//! Ordinary (2-uniform) graphs.
//!
//! The paper motivates its main theorem as the hypergraph generalization of a
//! classical fact about ordinary graphs: a (nontrivial) connected graph has
//! no articulation point iff there are two edge-disjoint paths between every
//! pair of nodes (equivalently, it is a single block / biconnected
//! component).  This module supplies that classical machinery: articulation
//! points, biconnected components, spanning trees, and path search — used
//! both for the graph-vs-hypergraph comparison and as a substrate for primal
//! graphs and join-tree verification.

use crate::interner::NodeId;
use crate::nodeset::NodeSet;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};

/// An undirected simple graph over [`NodeId`]s.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adjacency: HashMap<NodeId, NodeSet>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with no incident edges (idempotent).
    pub fn add_node(&mut self, n: NodeId) {
        self.adjacency.entry(n).or_default();
    }

    /// Adds an undirected edge (idempotent; self-loops are ignored).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            self.add_node(a);
            return;
        }
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// True if the edge `{a, b}` is present.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency.get(&a).is_some_and(|s| s.contains(b))
    }

    /// The neighbours of `n` (empty if `n` is not in the graph).
    pub fn neighbors(&self, n: NodeId) -> NodeSet {
        self.adjacency.get(&n).cloned().unwrap_or_default()
    }

    /// The neighbours of `n` by reference, or `None` if `n` is not in the
    /// graph — the allocation-free variant used by traversal inner loops.
    pub fn neighbors_ref(&self, n: NodeId) -> Option<&NodeSet> {
        self.adjacency.get(&n)
    }

    /// All nodes of the graph.
    pub fn nodes(&self) -> NodeSet {
        self.adjacency.keys().copied().collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(|s| s.len()).sum::<usize>() / 2
    }

    /// All edges as ordered pairs `(min, max)`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (&a, nbrs) in &self.adjacency {
            for b in nbrs.iter() {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out.sort();
        out
    }

    /// The connected components of the graph.
    pub fn components(&self) -> Vec<NodeSet> {
        let mut remaining = self.nodes();
        let mut out = Vec::new();
        while let Some(start) = remaining.first() {
            let comp = self.reachable_from(start);
            remaining.subtract(&comp);
            out.push(comp);
        }
        out.sort();
        out
    }

    /// Nodes reachable from `start` (including `start` itself).
    pub fn reachable_from(&self, start: NodeId) -> NodeSet {
        let mut seen = NodeSet::from_ids([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(n) = queue.pop_front() {
            for m in self.neighbors(n).iter() {
                if seen.insert(m) {
                    queue.push_back(m);
                }
            }
        }
        seen
    }

    /// True if the graph has at most one connected component.
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// A shortest path from `from` to `to` (inclusive), if one exists.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return self.adjacency.contains_key(&from).then(|| vec![from]);
        }
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut seen = NodeSet::from_ids([from]);
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for m in self.neighbors(n).iter() {
                if seen.insert(m) {
                    prev.insert(m, n);
                    if m == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(&p) = prev.get(&cur) {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(m);
                }
            }
        }
        None
    }

    /// The articulation points (cut vertices) of the graph, via Tarjan's
    /// low-link algorithm (iterative).
    pub fn articulation_points(&self) -> NodeSet {
        let mut result = NodeSet::new();
        let mut disc: HashMap<NodeId, usize> = HashMap::new();
        let mut low: HashMap<NodeId, usize> = HashMap::new();
        let mut timer = 0usize;

        for root in self.nodes().iter() {
            if disc.contains_key(&root) {
                continue;
            }
            // Iterative DFS storing (node, parent, neighbour iterator index).
            let mut stack: Vec<(NodeId, Option<NodeId>, Vec<NodeId>, usize)> = Vec::new();
            disc.insert(root, timer);
            low.insert(root, timer);
            timer += 1;
            let nbrs: Vec<NodeId> = self.neighbors(root).iter().collect();
            stack.push((root, None, nbrs, 0));
            let mut root_children = 0usize;

            while let Some((node, parent, nbrs, idx)) = stack.last_mut() {
                if *idx < nbrs.len() {
                    let next = nbrs[*idx];
                    *idx += 1;
                    match disc.entry(next) {
                        Entry::Vacant(entry) => {
                            if *node == root {
                                root_children += 1;
                            }
                            entry.insert(timer);
                            low.insert(next, timer);
                            timer += 1;
                            let nn: Vec<NodeId> = self.neighbors(next).iter().collect();
                            let parent_of_next = Some(*node);
                            stack.push((next, parent_of_next, nn, 0));
                        }
                        Entry::Occupied(next_disc) => {
                            if Some(next) != *parent {
                                let l = low[node].min(*next_disc.get());
                                low.insert(*node, l);
                            }
                        }
                    }
                } else {
                    let (node, parent, _, _) = stack.pop().expect("nonempty");
                    if let Some(p) = parent {
                        let l = low[&p].min(low[&node]);
                        low.insert(p, l);
                        if p != root && low[&node] >= disc[&p] {
                            result.insert(p);
                        }
                    }
                }
            }
            if root_children > 1 {
                result.insert(root);
            }
        }
        result
    }

    /// The biconnected components of the graph, each given as the set of
    /// nodes it spans.  Components of a single edge are included; isolated
    /// nodes are not.
    pub fn biconnected_components(&self) -> Vec<NodeSet> {
        // Recompute with an edge stack (standard Hopcroft–Tarjan variant),
        // implemented recursively over an explicit stack for robustness on
        // deep graphs.
        let mut comps: Vec<NodeSet> = Vec::new();
        let mut disc: HashMap<NodeId, usize> = HashMap::new();
        let mut low: HashMap<NodeId, usize> = HashMap::new();
        let mut timer = 0usize;
        let mut edge_stack: Vec<(NodeId, NodeId)> = Vec::new();
        let mut visited_edges: HashSet<(NodeId, NodeId)> = HashSet::new();

        let norm = |a: NodeId, b: NodeId| if a < b { (a, b) } else { (b, a) };

        for root in self.nodes().iter() {
            if disc.contains_key(&root) {
                continue;
            }
            let mut stack: Vec<(NodeId, Option<NodeId>, Vec<NodeId>, usize)> = Vec::new();
            disc.insert(root, timer);
            low.insert(root, timer);
            timer += 1;
            stack.push((root, None, self.neighbors(root).iter().collect(), 0));

            while let Some((node, parent, nbrs, idx)) = stack.last_mut() {
                if *idx < nbrs.len() {
                    let next = nbrs[*idx];
                    *idx += 1;
                    if Some(next) == *parent {
                        continue;
                    }
                    let node_disc = disc[node];
                    match disc.entry(next) {
                        Entry::Vacant(entry) => {
                            visited_edges.insert(norm(*node, next));
                            edge_stack.push((*node, next));
                            entry.insert(timer);
                            low.insert(next, timer);
                            timer += 1;
                            let node_copy = *node;
                            stack.push((
                                next,
                                Some(node_copy),
                                self.neighbors(next).iter().collect(),
                                0,
                            ));
                        }
                        Entry::Occupied(entry) => {
                            let next_disc = *entry.get();
                            if next_disc < node_disc && visited_edges.insert(norm(*node, next)) {
                                edge_stack.push((*node, next));
                                let l = low[node].min(next_disc);
                                low.insert(*node, l);
                            }
                        }
                    }
                } else {
                    let (node, parent, _, _) = stack.pop().expect("nonempty");
                    if let Some(p) = parent {
                        let l = low[&p].min(low[&node]);
                        low.insert(p, l);
                        if low[&node] >= disc[&p] {
                            // Pop a biconnected component off the edge stack.
                            let mut comp = NodeSet::new();
                            while let Some(&(a, b)) = edge_stack.last() {
                                if disc[&a] >= disc[&node] || (a == p && b == node) {
                                    comp.insert(a);
                                    comp.insert(b);
                                    edge_stack.pop();
                                    if a == p && b == node {
                                        break;
                                    }
                                } else {
                                    break;
                                }
                            }
                            if !comp.is_empty() {
                                comps.push(comp);
                            }
                        }
                    }
                }
            }
        }
        comps.sort();
        comps
    }

    /// Removes a node and every edge incident to it (idempotent).  Costs
    /// `O(deg(n))`: only the former neighbours' adjacency sets are touched.
    pub fn remove_node(&mut self, n: NodeId) {
        if let Some(nbrs) = self.adjacency.remove(&n) {
            for m in nbrs.iter() {
                if let Some(s) = self.adjacency.get_mut(&m) {
                    s.remove(n);
                }
            }
        }
    }

    /// The number of *fill edges* eliminating `n` would add: pairs of
    /// neighbours of `n` that are not themselves adjacent.  This is the
    /// quantity the min-fill triangulation heuristic minimizes — a node with
    /// fill-in zero is *simplicial* (its neighbourhood is already a clique),
    /// and a graph is chordal iff it admits an elimination order of
    /// simplicial nodes.
    pub fn fill_in_count(&self, n: NodeId) -> usize {
        let Some(nbrs) = self.adjacency.get(&n) else {
            return 0;
        };
        let mut missing = 0usize;
        for a in nbrs.iter() {
            // Neighbours of n that are not adjacent to a (and are not a).
            let adjacent = &self.adjacency[&a];
            let mut non_adjacent = nbrs.difference(adjacent);
            non_adjacent.remove(a);
            missing += non_adjacent.len();
        }
        missing / 2
    }

    /// *Eliminates* `n`: connects its neighbours into a clique (adding the
    /// fill edges counted by [`Graph::fill_in_count`]) and removes `n`.
    /// Returns the neighbourhood of `n` at elimination time — together with
    /// `n` itself this is the *bag* the triangulation-based hypertree
    /// decomposition records for this step.
    pub fn eliminate(&mut self, n: NodeId) -> NodeSet {
        let nbrs = self.neighbors(n);
        let members: Vec<NodeId> = nbrs.iter().collect();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                self.add_edge(a, b);
            }
        }
        self.remove_node(n);
        nbrs
    }

    /// A spanning tree of the component containing `root`, as parent links.
    pub fn spanning_tree(&self, root: NodeId) -> HashMap<NodeId, NodeId> {
        let mut parent = HashMap::new();
        let mut seen = NodeSet::from_ids([root]);
        let mut queue = VecDeque::from([root]);
        while let Some(n) = queue.pop_front() {
            for m in self.neighbors(n).iter() {
                if seen.insert(m) {
                    parent.insert(m, n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// True if the graph is acyclic when viewed as an undirected graph
    /// (i.e. it is a forest).
    pub fn is_forest(&self) -> bool {
        let comps = self.components();
        let nodes = self.node_count();
        let edges = self.edge_count();
        // A forest with c components on n nodes has exactly n - c edges.
        edges + comps.len() == nodes || (nodes == 0 && edges == 0)
    }

    /// True if the graph is a tree: connected and acyclic.
    pub fn is_tree(&self) -> bool {
        self.node_count() > 0 && self.is_connected() && self.is_forest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn path(len: u32) -> Graph {
        let mut g = Graph::new();
        for i in 0..len.saturating_sub(1) {
            g.add_edge(n(i), n(i + 1));
        }
        g
    }

    fn cycle(len: u32) -> Graph {
        let mut g = path(len);
        if len > 2 {
            g.add_edge(n(len - 1), n(0));
        }
        g
    }

    #[test]
    fn basic_accessors() {
        let mut g = Graph::new();
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_node(n(5));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(n(1), n(0)));
        assert!(!g.has_edge(n(0), n(2)));
        assert_eq!(g.edges(), vec![(n(0), n(1)), (n(1), n(2))]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = Graph::new();
        g.add_edge(n(0), n(0));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = path(3);
        g.add_edge(n(10), n(11));
        assert!(!g.is_connected());
        assert_eq!(g.components().len(), 2);
        assert!(path(4).is_connected());
    }

    #[test]
    fn shortest_paths() {
        let g = cycle(6);
        let p = g.shortest_path(n(0), n(3)).unwrap();
        assert_eq!(p.len(), 4); // 0-1-2-3 or 0-5-4-3
        assert_eq!(p[0], n(0));
        assert_eq!(p[3], n(3));
        assert_eq!(g.shortest_path(n(0), n(0)), Some(vec![n(0)]));
        let disconnected = {
            let mut g = path(2);
            g.add_node(n(9));
            g
        };
        assert_eq!(disconnected.shortest_path(n(0), n(9)), None);
    }

    #[test]
    fn articulation_points_of_path_and_cycle() {
        let g = path(5);
        let cuts = g.articulation_points();
        assert_eq!(cuts, NodeSet::from_ids([n(1), n(2), n(3)]));
        assert!(cycle(5).articulation_points().is_empty());
    }

    #[test]
    fn articulation_points_of_two_triangles_sharing_a_vertex() {
        let mut g = Graph::new();
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            g.add_edge(n(a), n(b));
        }
        assert_eq!(g.articulation_points(), NodeSet::from_ids([n(2)]));
        let comps = g.biconnected_components();
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&NodeSet::from_ids([n(0), n(1), n(2)])));
        assert!(comps.contains(&NodeSet::from_ids([n(2), n(3), n(4)])));
    }

    #[test]
    fn biconnected_components_of_path() {
        let comps = path(4).biconnected_components();
        assert_eq!(comps.len(), 3);
        for c in comps {
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn block_equivalence_classical_theorem() {
        // A cycle has no articulation point and exactly one biconnected
        // component spanning all nodes — the classical fact the paper
        // generalizes.
        let g = cycle(7);
        assert!(g.articulation_points().is_empty());
        let comps = g.biconnected_components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], g.nodes());
    }

    #[test]
    fn spanning_tree_reaches_component() {
        let g = cycle(5);
        let t = g.spanning_tree(n(0));
        assert_eq!(t.len(), 4); // every node except the root has a parent
        for (&child, &parent) in &t {
            assert!(g.has_edge(child, parent));
        }
    }

    #[test]
    fn fill_in_counts_follow_the_neighbourhood_clique() {
        // On a cycle every node has two non-adjacent neighbours: fill-in 1.
        let g = cycle(5);
        for i in 0..5 {
            assert_eq!(g.fill_in_count(n(i)), 1);
        }
        // Path endpoints are simplicial (single neighbour, no fill).
        let p = path(4);
        assert_eq!(p.fill_in_count(n(0)), 0);
        assert_eq!(p.fill_in_count(n(1)), 1);
        // A complete graph is all-simplicial.
        let mut k4 = Graph::new();
        for i in 0..4 {
            for j in i + 1..4 {
                k4.add_edge(n(i), n(j));
            }
        }
        for i in 0..4 {
            assert_eq!(k4.fill_in_count(n(i)), 0);
        }
        // Unknown nodes have no neighbourhood to fill.
        assert_eq!(g.fill_in_count(n(99)), 0);
    }

    #[test]
    fn eliminate_adds_fill_edges_and_removes_the_node() {
        let mut g = cycle(4);
        let bag = g.eliminate(n(0));
        assert_eq!(bag, NodeSet::from_ids([n(1), n(3)]));
        assert!(!g.nodes().contains(n(0)));
        // The fill edge {1, 3} closes the neighbourhood.
        assert!(g.has_edge(n(1), n(3)));
        // The remaining triangle is now all-simplicial.
        for i in 1..4 {
            assert_eq!(g.fill_in_count(n(i)), 0);
        }
        // remove_node is idempotent and prunes incident edges.
        g.remove_node(n(1));
        g.remove_node(n(1));
        assert!(!g.has_edge(n(1), n(2)));
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn forest_and_tree_detection() {
        assert!(path(4).is_tree());
        assert!(path(4).is_forest());
        assert!(!cycle(4).is_forest());
        let mut forest = path(3);
        forest.add_edge(n(10), n(11));
        assert!(forest.is_forest());
        assert!(!forest.is_tree());
    }
}
