//! Node (attribute) interning.
//!
//! Hypergraph nodes are identified by small integer [`NodeId`]s that index
//! into a [`Universe`].  A `Universe` is the fixed set of node names over
//! which one or more hypergraphs are defined.  Derived hypergraphs (Graham
//! reductions, tableau reductions, node-generated sub-hypergraphs, …) share
//! the universe of the hypergraph they came from, so node identity is stable
//! across every transformation in this workspace.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a node (an *attribute* in the database reading of the
/// paper).  `NodeId`s index into the [`Universe`] they were created by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index of this node inside its universe.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An immutable, shared set of node names.
///
/// A universe is created once (usually by
/// [`HypergraphBuilder`](crate::hypergraph::HypergraphBuilder)) and then
/// shared, via [`Arc`], by every hypergraph derived from the original.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Universe {
    names: Vec<String>,
    index: HashMap<String, NodeId>,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a universe containing the given names, in order.
    ///
    /// Duplicate names are collapsed to a single node.
    pub fn from_names<I, S>(names: I) -> Arc<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut u = Self::new();
        for n in names {
            u.intern(n.as_ref());
        }
        Arc::new(u)
    }

    /// Interns `name`, returning its id.  Idempotent.
    pub fn intern(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up a name without interning it.
    pub fn get(&self, name: &str) -> Option<NodeId> {
        self.index.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this universe.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// The name of `id`, if it belongs to this universe.
    pub fn try_name(&self, id: NodeId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no node has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all node ids in this universe, in interning order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n.as_str()))
    }

    /// True if `id` is a valid node of this universe.
    pub fn contains_id(&self, id: NodeId) -> bool {
        id.index() < self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let a2 = u.intern("A");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn lookup_by_name_and_id() {
        let u = Universe::from_names(["A", "B", "C"]);
        assert_eq!(u.get("B"), Some(NodeId(1)));
        assert_eq!(u.name(NodeId(2)), "C");
        assert_eq!(u.get("Z"), None);
        assert_eq!(u.try_name(NodeId(9)), None);
    }

    #[test]
    fn from_names_dedups() {
        let u = Universe::from_names(["A", "B", "A"]);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn iteration_order_is_interning_order() {
        let u = Universe::from_names(["X", "Y", "Z"]);
        let names: Vec<&str> = u.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["X", "Y", "Z"]);
        let ids: Vec<NodeId> = u.ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn contains_id_bounds() {
        let u = Universe::from_names(["A"]);
        assert!(u.contains_id(NodeId(0)));
        assert!(!u.contains_id(NodeId(1)));
    }
}
