//! Dynamic bit-set of nodes.
//!
//! Set algebra on node sets dominates the inner loops of Graham reduction,
//! tableau minimization, and articulation-set discovery, so node sets are
//! stored as packed `u64` words rather than sorted vectors or hash sets.

use crate::interner::{NodeId, Universe};
use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

const BITS: usize = 64;

/// A set of [`NodeId`]s backed by a dynamic bitset.
///
/// The set grows automatically on insertion; all binary operations accept
/// operands of different capacities.
#[derive(Debug, Clone, Default, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with room for nodes `0..capacity` without
    /// reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(BITS)],
        }
    }

    /// Creates the set `{0, 1, …, n-1}`: every node of a universe with `n`
    /// nodes.
    pub fn full(n: usize) -> Self {
        let mut s = Self::with_capacity(n);
        for i in 0..n {
            s.insert(NodeId(i as u32));
        }
        s
    }

    /// Builds a set from anything yielding node ids.
    pub fn from_ids<I: IntoIterator<Item = NodeId>>(ids: I) -> Self {
        let mut s = Self::new();
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Builds a set by looking node names up in `universe`.
    ///
    /// Returns `None` if any name is unknown.
    pub fn from_names<'a, I>(universe: &Universe, names: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut s = Self::new();
        for name in names {
            s.insert(universe.get(name)?);
        }
        Some(s)
    }

    #[inline]
    fn word_bit(id: NodeId) -> (usize, u64) {
        (id.index() / BITS, 1u64 << (id.index() % BITS))
    }

    /// Inserts a node.  Returns `true` if the node was not already present.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (w, b) = Self::word_bit(id);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let was = self.words[w] & b != 0;
        self.words[w] |= b;
        !was
    }

    /// Removes a node.  Returns `true` if the node was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (w, b) = Self::word_bit(id);
        if w >= self.words.len() {
            return false;
        }
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        let (w, b) = Self::word_bit(id);
        self.words.get(w).is_some_and(|word| word & b != 0)
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set contains no node.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all nodes.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Iterates over the node ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(NodeId((wi * BITS + bit) as u32))
                }
            })
        })
    }

    /// Smallest node id in the set, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    /// The single element of a singleton set, or `None` if the set has zero
    /// or more than one element.
    pub fn as_singleton(&self) -> Option<NodeId> {
        let mut it = self.iter();
        match (it.next(), it.next()) {
            (Some(id), None) => Some(id),
            _ => None,
        }
    }

    fn binary(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        let n = self.words.len().max(other.words.len());
        let mut words = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            words.push(f(a, b));
        }
        Self { words }
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        self.binary(other, |a, b| a | b)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Self) -> Self {
        self.binary(other, |a, b| a & b)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Self) -> Self {
        self.binary(other, |a, b| a & !b)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, &w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Self) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference.
    pub fn subtract(&mut self, other: &Self) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= !other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// True if `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// True if `self ⊂ other` (subset and not equal).
    pub fn is_proper_subset(&self, other: &Self) -> bool {
        self.is_subset(other) && self != other
    }

    /// True if `self ⊇ other`.
    pub fn is_superset(&self, other: &Self) -> bool {
        other.is_subset(self)
    }

    /// True if the two sets share no node.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & b == 0)
    }

    /// True if the two sets share at least one node.
    pub fn intersects(&self, other: &Self) -> bool {
        !self.is_disjoint(other)
    }

    /// Renders the set using the node names of `universe`, e.g. `{A, C, E}`.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> NodeSetDisplay<'a> {
        NodeSetDisplay {
            set: self,
            universe,
        }
    }

    /// The node names of this set, in id order.
    pub fn names<'a>(&self, universe: &'a Universe) -> Vec<&'a str> {
        self.iter().map(|id| universe.name(id)).collect()
    }
}

impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl std::hash::Hash for NodeSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Trailing zero words must not affect the hash (they do not affect
        // equality), so hash only up to the last nonzero word.
        let last = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        self.words[..last].hash(state);
    }
}

impl PartialOrd for NodeSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeSet {
    /// Lexicographic order on the sorted element sequence; gives a stable,
    /// deterministic ordering for canonical output.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter().cmp(other.iter())
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        Self::from_ids(iter)
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Box<dyn Iterator<Item = NodeId> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl BitOr for &NodeSet {
    type Output = NodeSet;
    fn bitor(self, rhs: Self) -> NodeSet {
        self.union(rhs)
    }
}

impl BitAnd for &NodeSet {
    type Output = NodeSet;
    fn bitand(self, rhs: Self) -> NodeSet {
        self.intersection(rhs)
    }
}

impl Sub for &NodeSet {
    type Output = NodeSet;
    fn sub(self, rhs: Self) -> NodeSet {
        self.difference(rhs)
    }
}

/// Helper returned by [`NodeSet::display`].
pub struct NodeSetDisplay<'a> {
    set: &'a NodeSet,
    universe: &'a Universe,
}

impl fmt::Display for NodeSetDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.set.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match self.universe.try_name(id) {
                Some(name) => write!(f, "{name}")?,
                None => write!(f, "{id}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.insert(NodeId(3)));
        assert!(!s.insert(NodeId(3)));
        assert!(s.contains(NodeId(3)));
        assert!(!s.contains(NodeId(2)));
        assert!(s.remove(NodeId(3)));
        assert!(!s.remove(NodeId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn insert_beyond_initial_capacity() {
        let mut s = NodeSet::with_capacity(4);
        assert!(s.insert(NodeId(200)));
        assert!(s.contains(NodeId(200)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = set(&[0, 1, 2, 70]);
        let b = set(&[1, 2, 3]);
        assert_eq!(a.union(&b), set(&[0, 1, 2, 3, 70]));
        assert_eq!(a.intersection(&b), set(&[1, 2]));
        assert_eq!(a.difference(&b), set(&[0, 70]));
        assert_eq!(b.difference(&a), set(&[3]));
    }

    #[test]
    fn operator_sugar() {
        let a = set(&[0, 1]);
        let b = set(&[1, 2]);
        assert_eq!(&a | &b, set(&[0, 1, 2]));
        assert_eq!(&a & &b, set(&[1]));
        assert_eq!(&a - &b, set(&[0]));
    }

    #[test]
    fn subset_superset_disjoint() {
        let a = set(&[1, 2]);
        let b = set(&[0, 1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(!a.is_proper_subset(&a.clone()));
        assert!(a.is_subset(&a.clone()));
        assert!(set(&[5]).is_disjoint(&a));
        assert!(a.intersects(&b));
    }

    #[test]
    fn equality_ignores_capacity() {
        let a = set(&[1]);
        let mut b = NodeSet::with_capacity(1000);
        b.insert(NodeId(1));
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn iteration_is_sorted() {
        let s = set(&[65, 3, 0, 128]);
        let ids: Vec<u32> = s.iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 3, 65, 128]);
        assert_eq!(s.first(), Some(NodeId(0)));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn singleton_detection() {
        assert_eq!(set(&[7]).as_singleton(), Some(NodeId(7)));
        assert_eq!(set(&[]).as_singleton(), None);
        assert_eq!(set(&[1, 2]).as_singleton(), None);
    }

    #[test]
    fn in_place_ops() {
        let mut a = set(&[0, 1, 2]);
        a.union_with(&set(&[3, 100]));
        assert_eq!(a, set(&[0, 1, 2, 3, 100]));
        a.intersect_with(&set(&[1, 2, 3]));
        assert_eq!(a, set(&[1, 2, 3]));
        a.subtract(&set(&[2]));
        assert_eq!(a, set(&[1, 3]));
    }

    #[test]
    fn full_and_from_names() {
        let f = NodeSet::full(67);
        assert_eq!(f.len(), 67);
        assert!(f.contains(NodeId(66)));
        assert!(!f.contains(NodeId(67)));

        let u = Universe::from_names(["A", "B", "C"]);
        let s = NodeSet::from_names(&u, ["A", "C"]).unwrap();
        assert_eq!(s.names(&u), vec!["A", "C"]);
        assert!(NodeSet::from_names(&u, ["A", "Z"]).is_none());
    }

    #[test]
    fn display_uses_names() {
        let u = Universe::from_names(["A", "B", "C"]);
        let s = NodeSet::from_names(&u, ["C", "A"]).unwrap();
        assert_eq!(format!("{}", s.display(&u)), "{A, C}");
    }

    #[test]
    fn ordering_is_lexicographic_on_elements() {
        assert!(set(&[0, 5]) < set(&[1]));
        assert!(set(&[1, 2]) < set(&[1, 3]));
        assert!(set(&[1]) < set(&[1, 0x40]));
    }
}
