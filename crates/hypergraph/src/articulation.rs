//! Articulation sets of hypergraphs.
//!
//! An *articulation set* is the intersection `X = E ∩ F` of two edges such
//! that removing the nodes of `X` from the hypergraph (and hence from every
//! edge containing them) increases the number of connected components
//! (paper §1).  Articulation sets generalize articulation points of ordinary
//! graphs and are the pivot of the paper's acyclicity definition.

use crate::hypergraph::Hypergraph;
use crate::nodeset::NodeSet;
use std::collections::BTreeSet;

impl Hypergraph {
    /// All candidate articulation sets: the distinct nonempty pairwise
    /// intersections of edges.
    pub fn edge_intersections(&self) -> Vec<NodeSet> {
        let mut seen = BTreeSet::new();
        let edges = self.edges();
        for i in 0..edges.len() {
            for j in i + 1..edges.len() {
                let x = edges[i].nodes.intersection(&edges[j].nodes);
                if !x.is_empty() {
                    seen.insert(x);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// True if `x` is an articulation set of this hypergraph: it is the
    /// intersection of two edges and its removal increases the number of
    /// components.
    pub fn is_articulation_set(&self, x: &NodeSet) -> bool {
        if x.is_empty() {
            return false;
        }
        let is_intersection = {
            let edges = self.edges();
            let mut found = false;
            'outer: for i in 0..edges.len() {
                for j in i + 1..edges.len() {
                    if &edges[i].nodes.intersection(&edges[j].nodes) == x {
                        found = true;
                        break 'outer;
                    }
                }
            }
            found
        };
        if !is_intersection {
            return false;
        }
        self.removal_increases_components(x)
    }

    /// True if removing the node set `x` increases the number of connected
    /// components (regardless of whether `x` is an edge intersection).
    pub fn removal_increases_components(&self, x: &NodeSet) -> bool {
        self.components_without(x).len() > self.component_count()
    }

    /// All articulation sets of the hypergraph, in canonical order.
    pub fn articulation_sets(&self) -> Vec<NodeSet> {
        self.edge_intersections()
            .into_iter()
            .filter(|x| self.removal_increases_components(x))
            .collect()
    }

    /// Some articulation set, if one exists.  Cheaper than
    /// [`Hypergraph::articulation_sets`] when only existence matters.
    pub fn find_articulation_set(&self) -> Option<NodeSet> {
        let base = self.component_count();
        let edges = self.edges();
        let mut seen = BTreeSet::new();
        for i in 0..edges.len() {
            for j in i + 1..edges.len() {
                let x = edges[i].nodes.intersection(&edges[j].nodes);
                if x.is_empty() || !seen.insert(x.clone()) {
                    continue;
                }
                if self.components_without(&x).len() > base {
                    return Some(x);
                }
            }
        }
        None
    }

    /// True if the hypergraph has at least one articulation set.
    pub fn has_articulation_set(&self) -> bool {
        self.find_articulation_set().is_some()
    }

    /// The *blocks* of the hypergraph in the sense the paper alludes to for
    /// ordinary graphs: maximal node-generated sub-hypergraphs without an
    /// articulation set, computed by recursively splitting at articulation
    /// sets.  Each block is returned as a node set (the articulation set is
    /// shared between the blocks it separates).
    pub fn blocks(&self) -> Vec<NodeSet> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeSet> = self.components();
        if stack.is_empty() && self.edge_count() > 0 {
            stack.push(self.nodes());
        }
        while let Some(nodes) = stack.pop() {
            let sub = self.induced(&nodes);
            match sub.find_articulation_set() {
                None => out.push(nodes),
                Some(x) => {
                    for comp in sub.components_without(&x) {
                        stack.push(comp.union(&x));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    fn triangle() -> Hypergraph {
        Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap()
    }

    #[test]
    fn fig1_has_articulation_sets() {
        let h = fig1();
        assert!(h.has_articulation_set());
        let arts = h.articulation_sets();
        // {A, C}, {C, E}, {A, E} and {A, C, E} all separate a pendant node.
        assert!(arts.contains(&h.node_set(["A", "C"]).unwrap()));
        assert!(arts.contains(&h.node_set(["C", "E"]).unwrap()));
        assert!(arts.contains(&h.node_set(["A", "E"]).unwrap()));
        for x in &arts {
            assert!(h.is_articulation_set(x));
        }
    }

    #[test]
    fn triangle_has_no_articulation_set() {
        let h = triangle();
        assert!(!h.has_articulation_set());
        assert!(h.articulation_sets().is_empty());
        // Singleton intersections exist but do not disconnect.
        assert_eq!(h.edge_intersections().len(), 3);
    }

    #[test]
    fn empty_set_is_never_an_articulation_set() {
        assert!(!fig1().is_articulation_set(&NodeSet::new()));
    }

    #[test]
    fn non_intersection_is_rejected() {
        let h = fig1();
        // {C, D} disconnects nothing relevant and is not an edge intersection.
        let x = h.node_set(["B", "D"]).unwrap();
        assert!(!h.is_articulation_set(&x));
    }

    #[test]
    fn chain_articulation() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        assert!(h.is_articulation_set(&h.node_set(["B"]).unwrap()));
        assert!(h.is_articulation_set(&h.node_set(["C"]).unwrap()));
        assert_eq!(h.articulation_sets().len(), 2);
    }

    #[test]
    fn find_matches_enumerate() {
        let h = fig1();
        let found = h.find_articulation_set().unwrap();
        assert!(h.articulation_sets().contains(&found));
    }

    #[test]
    fn blocks_of_a_chain_are_its_edges() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let blocks = h.blocks();
        assert_eq!(blocks.len(), 3);
        assert!(blocks.contains(&h.node_set(["A", "B"]).unwrap()));
        assert!(blocks.contains(&h.node_set(["B", "C"]).unwrap()));
        assert!(blocks.contains(&h.node_set(["C", "D"]).unwrap()));
    }

    #[test]
    fn blocks_of_triangle_is_whole() {
        let h = triangle();
        let blocks = h.blocks();
        assert_eq!(blocks, vec![h.nodes()]);
    }

    #[test]
    fn disconnected_hypergraph_components_count_as_base() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["C", "D"]]).unwrap();
        // No intersections at all, so no articulation sets.
        assert!(!h.has_articulation_set());
        assert_eq!(h.blocks().len(), 2);
    }
}
