//! Connectedness and components of hypergraphs.
//!
//! A set of nodes `N` is connected if every pair of its nodes is linked by a
//! chain of edges with pairwise nonempty intersections (paper §1).  A
//! *component* is a maximal connected set of nodes.

use crate::hypergraph::Hypergraph;
use crate::interner::NodeId;
use crate::nodeset::NodeSet;

impl Hypergraph {
    /// The connected components of the hypergraph, as node sets, sorted
    /// canonically.
    ///
    /// Nodes of the universe that appear in no edge do not belong to any
    /// component.
    pub fn components(&self) -> Vec<NodeSet> {
        let mut remaining = self.nodes();
        let mut components = Vec::new();
        while let Some(start) = remaining.first() {
            let comp = self.component_of(start);
            remaining.subtract(&comp);
            components.push(comp);
        }
        components.sort();
        components
    }

    /// The component containing node `start` (the node itself if it appears
    /// in no edge of the hypergraph).
    pub fn component_of(&self, start: NodeId) -> NodeSet {
        let mut comp = NodeSet::from_ids([start]);
        let mut frontier = vec![start];
        let mut edge_used = vec![false; self.edge_count()];
        while let Some(n) = frontier.pop() {
            for (eid, e) in self.edge_entries() {
                if edge_used[eid.index()] || !e.nodes.contains(n) {
                    continue;
                }
                edge_used[eid.index()] = true;
                for m in e.nodes.iter() {
                    if comp.insert(m) {
                        frontier.push(m);
                    }
                }
            }
        }
        comp
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.components().len()
    }

    /// True if all nodes appearing in edges lie in a single component (or the
    /// hypergraph has no edges).
    pub fn is_connected(&self) -> bool {
        self.component_count() <= 1
    }

    /// True if the node set `n` is connected *within this hypergraph*: every
    /// pair of its nodes is linked by a chain of edges of `self`, each
    /// consecutive pair of which intersects.
    ///
    /// This is connectivity of `n` through whole edges of `self`, which is
    /// how the paper uses the term when defining articulation sets.  (To ask
    /// whether `n` is connected as a node-generated hypergraph, use
    /// [`Hypergraph::induced`] and then `is_connected`.)
    pub fn is_node_set_connected(&self, n: &NodeSet) -> bool {
        let Some(start) = n.first() else {
            return true;
        };
        let reach = self.component_of(start);
        n.is_subset(&reach)
    }

    /// Partition of the *edges* by component: each entry is the list of edge
    /// ids whose nodes lie inside the corresponding component of
    /// [`Hypergraph::components`].
    pub fn edge_components(&self) -> Vec<Vec<crate::edge::EdgeId>> {
        let comps = self.components();
        comps
            .iter()
            .map(|c| {
                self.edge_entries()
                    .filter(|(_, e)| e.nodes.is_subset(c))
                    .map(|(id, _)| id)
                    .collect()
            })
            .collect()
    }

    /// The components of the hypergraph obtained by deleting the node set
    /// `x` from every edge (dropping emptied edges).  This is the quantity
    /// articulation sets are defined in terms of.
    pub fn components_without(&self, x: &NodeSet) -> Vec<NodeSet> {
        self.remove_nodes(x).components()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::Hypergraph;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn fig1_is_connected() {
        let h = fig1();
        assert!(h.is_connected());
        assert_eq!(h.component_count(), 1);
        assert_eq!(h.components()[0], h.nodes());
    }

    #[test]
    fn two_islands() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["C", "D"], vec!["B", "E"]]).unwrap();
        assert!(!h.is_connected());
        let comps = h.components();
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&h.node_set(["A", "B", "E"]).unwrap()));
        assert!(comps.contains(&h.node_set(["C", "D"]).unwrap()));
    }

    #[test]
    fn component_of_singleton() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["C"]]).unwrap();
        let c = h.node("C").unwrap();
        assert_eq!(h.component_of(c), h.node_set(["C"]).unwrap());
    }

    #[test]
    fn empty_hypergraph_is_connected() {
        let h = Hypergraph::builder().build().unwrap();
        assert!(h.is_connected());
        assert!(h.components().is_empty());
    }

    #[test]
    fn node_set_connectivity() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["D", "E"]]).unwrap();
        assert!(h.is_node_set_connected(&h.node_set(["A", "C"]).unwrap()));
        assert!(!h.is_node_set_connected(&h.node_set(["A", "D"]).unwrap()));
        assert!(h.is_node_set_connected(&NodeSet::new()));
    }

    #[test]
    fn removing_articulation_nodes_splits_components() {
        // Removing {C, E} from Fig. 1 separates {A, B, F} from {D}.
        let h = fig1();
        let x = h.node_set(["C", "E"]).unwrap();
        let comps = h.components_without(&x);
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&h.node_set(["A", "B", "F"]).unwrap()));
        assert!(comps.contains(&h.node_set(["D"]).unwrap()));
    }

    #[test]
    fn edge_components_partition_edges() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["C", "D"], vec!["B", "E"]]).unwrap();
        let parts = h.edge_components();
        assert_eq!(parts.len(), 2);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }
}
