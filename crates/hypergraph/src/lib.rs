//! Hypergraph substrate for "Connections in Acyclic Hypergraphs"
//! (Maier & Ullman).
//!
//! This crate provides the data structures of the paper's §1:
//!
//! * interned node names ([`Universe`], [`NodeId`]) and bit-set node sets
//!   ([`NodeSet`]),
//! * hyperedges and hypergraphs ([`Edge`], [`Hypergraph`]) with reduction
//!   (removal of subsumed edges),
//! * connectivity and components,
//! * node-generated sets of edges (induced partial-edge hypergraphs),
//! * articulation sets,
//! * ordinary graphs ([`Graph`]) with articulation points and biconnected
//!   components — the classical theory the paper generalizes — plus primal,
//!   line and DOT views of hypergraphs.
//!
//! The algorithms of the paper itself (Graham reduction, tableau reduction,
//! canonical connections, independent paths, Theorem 6.1) live in the
//! `acyclic` and `tableau` crates, which build on this one.
//!
//! # Module map
//!
//! | Module | Paper concept |
//! |---|---|
//! | `interner`, `nodeset` | node universe `N` and node sets `X ⊆ N` (§1); sets are bit vectors over interned ids |
//! | `edge`, `hypergraph` | hyperedges and hypergraphs `H = (N, E)`, reduction by subsumed-edge removal (§1) |
//! | `connectivity` | connectedness and components of a hypergraph (§1) |
//! | `induced` | node-generated partial-edge hypergraphs `H(X)` (§2) |
//! | `articulation` | articulation sets — the hypergraph generalization of articulation points (§4) |
//! | `graph` | ordinary graphs, articulation points, biconnected components — the classical theory being generalized |
//! | `primal` | primal ("2-section") and line-graph views used by the MCS acyclicity test |
//! | `dot` | Graphviz/ASCII rendering of the bipartite incidence structure (presentation only) |
//! | `error` | shared error type for malformed inputs |
//!
//! # Example
//!
//! ```
//! use hypergraph::Hypergraph;
//!
//! // Fig. 1 of the paper.
//! let h = Hypergraph::from_edges([
//!     vec!["A", "B", "C"],
//!     vec!["C", "D", "E"],
//!     vec!["A", "E", "F"],
//!     vec!["A", "C", "E"],
//! ]).unwrap();
//!
//! assert!(h.is_connected());
//! assert!(h.is_reduced());
//! assert!(h.has_articulation_set());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod articulation;
mod connectivity;
mod dot;
mod edge;
mod error;
mod graph;
mod hypergraph;
mod induced;
mod interner;
mod nodeset;
mod primal;

pub use edge::{Edge, EdgeDisplay, EdgeId};
pub use error::{HypergraphError, Result};
pub use graph::Graph;
pub use hypergraph::{Hypergraph, HypergraphBuilder, HypergraphDisplay};
pub use interner::{NodeId, Universe};
pub use nodeset::{NodeSet, NodeSetDisplay};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::{Edge, EdgeId, Graph, Hypergraph, HypergraphError, NodeId, NodeSet, Universe};
}
