//! Hyperedges and partial edges.

use crate::interner::Universe;
use crate::nodeset::NodeSet;
use std::fmt;

/// Identifier of an edge within a [`Hypergraph`](crate::Hypergraph).
///
/// Edge ids are *positional*: they index the owning hypergraph's edge vector
/// and are not stable across derived hypergraphs.  Use [`Edge::label`] to
/// track provenance across reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The index of this edge inside its hypergraph.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A hyperedge: a named set of nodes.
///
/// After a reduction the node set of an edge may be a proper subset of the
/// original edge it came from; following the paper we call such an edge a
/// *partial edge*.  The `label` records which original edge a partial edge
/// descends from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Human-readable label; preserved across reductions.
    pub label: String,
    /// The nodes of the edge.
    pub nodes: NodeSet,
}

impl Edge {
    /// Creates an edge from a label and a node set.
    pub fn new(label: impl Into<String>, nodes: NodeSet) -> Self {
        Self {
            label: label.into(),
            nodes,
        }
    }

    /// Number of nodes in the edge.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the edge has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if this edge's node set is a subset of `other`'s.
    pub fn is_subsumed_by(&self, other: &Edge) -> bool {
        self.nodes.is_subset(&other.nodes)
    }

    /// Renders the edge as `label{A, B, C}` using `universe` for node names.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> EdgeDisplay<'a> {
        EdgeDisplay {
            edge: self,
            universe,
        }
    }
}

/// Helper returned by [`Edge::display`].
pub struct EdgeDisplay<'a> {
    edge: &'a Edge,
    universe: &'a Universe,
}

impl fmt::Display for EdgeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.edge.label,
            self.edge.nodes.display(self.universe)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::NodeId;

    #[test]
    fn subsumption() {
        let a = Edge::new("a", NodeSet::from_ids([NodeId(0), NodeId(1)]));
        let b = Edge::new("b", NodeSet::from_ids([NodeId(0), NodeId(1), NodeId(2)]));
        assert!(a.is_subsumed_by(&b));
        assert!(a.is_subsumed_by(&a.clone()));
        assert!(!b.is_subsumed_by(&a));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn display_includes_label_and_names() {
        let u = Universe::from_names(["A", "B"]);
        let e = Edge::new("R1", NodeSet::from_names(&u, ["A", "B"]).unwrap());
        assert_eq!(format!("{}", e.display(&u)), "R1{A, B}");
    }

    #[test]
    fn edge_id_display_and_index() {
        assert_eq!(EdgeId(3).index(), 3);
        assert_eq!(format!("{}", EdgeId(3)), "e3");
    }
}
