//! Primal (Gaifman), dual and line graphs of a hypergraph.
//!
//! These ordinary-graph views connect the hypergraph world of the paper back
//! to classical graph theory: the primal graph joins two nodes iff they
//! co-occur in an edge; the line (intersection) graph joins two edges iff
//! they share a node.

use crate::edge::EdgeId;
use crate::graph::Graph;
use crate::hypergraph::Hypergraph;
use crate::interner::NodeId;
use std::collections::HashMap;

impl Hypergraph {
    /// The primal (Gaifman) graph: nodes of the hypergraph, with an edge
    /// between two nodes whenever some hyperedge contains both.
    pub fn primal_graph(&self) -> Graph {
        let mut g = Graph::new();
        for n in self.nodes().iter() {
            g.add_node(n);
        }
        for e in self.edges() {
            let members: Vec<NodeId> = e.nodes.iter().collect();
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    g.add_edge(members[i], members[j]);
                }
            }
        }
        g
    }

    /// The line (intersection) graph: one graph-node per hyperedge, adjacent
    /// when the hyperedges intersect.  Returns the graph plus the mapping
    /// from graph node ids (fresh, dense) to hyperedge ids.
    pub fn line_graph(&self) -> (Graph, HashMap<NodeId, EdgeId>) {
        let mut g = Graph::new();
        let mut map = HashMap::new();
        for (i, _) in self.edges().iter().enumerate() {
            let gnode = NodeId(i as u32);
            g.add_node(gnode);
            map.insert(gnode, EdgeId(i as u32));
        }
        for i in 0..self.edge_count() {
            for j in i + 1..self.edge_count() {
                if self.edges()[i].nodes.intersects(&self.edges()[j].nodes) {
                    g.add_edge(NodeId(i as u32), NodeId(j as u32));
                }
            }
        }
        (g, map)
    }

    /// True if every clique of the primal graph induced by a hyperedge is
    /// maximal, i.e. the hypergraph is *conformal*… restricted to the cheap
    /// direction we need: each hyperedge is a clique of the primal graph.
    /// (Full conformality testing lives in the `acyclic` crate's hierarchy
    /// module; this helper is used by its tests.)
    pub fn edges_are_primal_cliques(&self) -> bool {
        let g = self.primal_graph();
        self.edges().iter().all(|e| {
            let members: Vec<NodeId> = e.nodes.iter().collect();
            members
                .iter()
                .enumerate()
                .all(|(i, &a)| members[i + 1..].iter().all(|&b| g.has_edge(a, b)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn primal_graph_of_fig1() {
        let h = fig1();
        let g = h.primal_graph();
        assert_eq!(g.node_count(), 6);
        let a = h.node("A").unwrap();
        let b = h.node("B").unwrap();
        let d = h.node("D").unwrap();
        let c = h.node("C").unwrap();
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(c, d));
        assert!(!g.has_edge(b, d));
        assert!(g.is_connected());
    }

    #[test]
    fn line_graph_of_fig1_is_complete() {
        let h = fig1();
        let (g, map) = h.line_graph();
        assert_eq!(g.node_count(), 4);
        // Every pair of Fig. 1 edges intersects, so the line graph is K4.
        assert_eq!(g.edge_count(), 6);
        assert_eq!(map.len(), 4);
    }

    #[test]
    fn line_graph_of_disjoint_edges_is_empty() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["C", "D"]]).unwrap();
        let (g, _) = h.line_graph();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn edges_are_cliques_of_primal_graph() {
        assert!(fig1().edges_are_primal_cliques());
    }

    #[test]
    fn primal_graph_of_single_edge_is_clique() {
        let h = Hypergraph::from_edges([vec!["A", "B", "C", "D"]]).unwrap();
        let g = h.primal_graph();
        assert_eq!(g.edge_count(), 6);
        assert!(g.articulation_points().is_empty());
    }
}
