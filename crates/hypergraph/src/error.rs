//! Error types for the hypergraph substrate.

use std::fmt;

/// Errors produced while building or transforming hypergraphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypergraphError {
    /// A node name was used that is not in the universe.
    UnknownNode(String),
    /// A node id outside the universe was used.
    UnknownNodeId(u32),
    /// An edge id outside the hypergraph was used.
    UnknownEdge(u32),
    /// An edge with no nodes was supplied where a nonempty edge is required.
    EmptyEdge(String),
    /// A hypergraph with no edges was supplied where at least one edge is
    /// required.
    EmptyHypergraph,
    /// An operation that requires a connected hypergraph was applied to a
    /// disconnected one.
    Disconnected,
    /// A candidate articulation set failed verification.
    NotAnArticulationSet(String),
}

impl fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode(name) => write!(f, "unknown node name {name:?}"),
            Self::UnknownNodeId(id) => write!(f, "node id n{id} is not in the universe"),
            Self::UnknownEdge(id) => write!(f, "edge id e{id} is not in the hypergraph"),
            Self::EmptyEdge(label) => write!(f, "edge {label:?} has no nodes"),
            Self::EmptyHypergraph => write!(f, "the hypergraph has no edges"),
            Self::Disconnected => write!(f, "the hypergraph is not connected"),
            Self::NotAnArticulationSet(s) => {
                write!(f, "{s} is not an articulation set of the hypergraph")
            }
        }
    }
}

impl std::error::Error for HypergraphError {}

/// Convenience alias used throughout the hypergraph crate.
pub type Result<T> = std::result::Result<T, HypergraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            HypergraphError::UnknownNode("X".into()).to_string(),
            "unknown node name \"X\""
        );
        assert!(HypergraphError::EmptyHypergraph
            .to_string()
            .contains("no edges"));
        assert!(HypergraphError::UnknownEdge(7).to_string().contains("e7"));
        assert!(HypergraphError::UnknownNodeId(7).to_string().contains("n7"));
        assert!(HypergraphError::Disconnected
            .to_string()
            .contains("not connected"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<HypergraphError>();
    }
}
