//! The [`Hypergraph`] type and its builder.

use crate::edge::{Edge, EdgeId};
use crate::error::{HypergraphError, Result};
use crate::interner::{NodeId, Universe};
use crate::nodeset::NodeSet;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A finite hypergraph `H = (N, E)`: a universe of nodes and a collection of
/// edges, each a subset of the universe.
///
/// Following the paper, hypergraphs are *not* forced to be reduced: derived
/// hypergraphs produced mid-reduction may temporarily contain an edge that is
/// a subset of another.  Use [`Hypergraph::reduce`] / [`Hypergraph::is_reduced`]
/// to normalize and test.
///
/// All hypergraphs derived from a common original share its [`Universe`], so
/// node identities remain comparable across Graham reductions, tableau
/// reductions and node-generated sub-hypergraphs.
#[derive(Clone)]
pub struct Hypergraph {
    universe: Arc<Universe>,
    edges: Vec<Edge>,
}

impl Hypergraph {
    /// Starts building a hypergraph by naming nodes and edges.
    pub fn builder() -> HypergraphBuilder {
        HypergraphBuilder::new()
    }

    /// Builds a hypergraph from edges given as lists of node names.
    ///
    /// Edge labels default to the node names joined with `-` (e.g.
    /// `A-B-C` for the paper's edge `{A, B, C}`).  The separator keeps
    /// distinct edges distinguishable — bare concatenation would label both
    /// `["A", "BC"]` and `["AB", "C"]` as `ABC` — and any label that still
    /// collides (e.g. duplicate edges) is deduplicated with a `#k` suffix.
    ///
    /// ```
    /// use hypergraph::Hypergraph;
    /// let h = Hypergraph::from_edges([
    ///     vec!["A", "B", "C"],
    ///     vec!["C", "D", "E"],
    /// ]).unwrap();
    /// assert_eq!(h.edge_count(), 2);
    /// assert_eq!(h.node_count(), 5);
    /// assert_eq!(h.edges()[0].label, "A-B-C");
    /// ```
    pub fn from_edges<I, E, S>(edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = E>,
        E: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut b = Self::builder();
        let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
        for edge in edges {
            let names: Vec<String> = edge.into_iter().map(|s| s.as_ref().to_owned()).collect();
            let mut label = names.join("-");
            if !used.insert(label.clone()) {
                let mut k = 2usize;
                label = loop {
                    let candidate = format!("{label}#{k}");
                    if used.insert(candidate.clone()) {
                        break candidate;
                    }
                    k += 1;
                };
            }
            b = b.edge(label, names.iter().map(String::as_str));
        }
        b.build()
    }

    /// Builds a hypergraph over an existing universe from explicit edges.
    ///
    /// Returns an error if any edge is empty or mentions a node outside the
    /// universe.
    pub fn with_universe(universe: Arc<Universe>, edges: Vec<Edge>) -> Result<Self> {
        for e in &edges {
            if e.nodes.is_empty() {
                return Err(HypergraphError::EmptyEdge(e.label.clone()));
            }
            if let Some(bad) = e.nodes.iter().find(|id| !universe.contains_id(*id)) {
                return Err(HypergraphError::UnknownNodeId(bad.0));
            }
        }
        Ok(Self { universe, edges })
    }

    /// The shared universe of node names.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with id `id`.
    pub fn edge(&self, id: EdgeId) -> Result<&Edge> {
        self.edges
            .get(id.index())
            .ok_or(HypergraphError::UnknownEdge(id.0))
    }

    /// Iterates over `(EdgeId, &Edge)` pairs.
    pub fn edge_entries(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The set of nodes that appear in at least one edge.
    ///
    /// This may be smaller than the universe (e.g. after node-removal steps).
    pub fn nodes(&self) -> NodeSet {
        let mut s = NodeSet::with_capacity(self.universe.len());
        for e in &self.edges {
            s.union_with(&e.nodes);
        }
        s
    }

    /// Number of nodes appearing in at least one edge.
    pub fn node_count(&self) -> usize {
        self.nodes().len()
    }

    /// True if the hypergraph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Looks a node up by name.
    pub fn node(&self, name: &str) -> Result<NodeId> {
        self.universe
            .get(name)
            .ok_or_else(|| HypergraphError::UnknownNode(name.to_owned()))
    }

    /// Builds a node set from names, failing on unknown names.
    pub fn node_set<'a, I>(&self, names: I) -> Result<NodeSet>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut s = NodeSet::with_capacity(self.universe.len());
        for name in names {
            s.insert(self.node(name)?);
        }
        Ok(s)
    }

    /// The ids of edges containing node `n`.
    pub fn edges_containing(&self, n: NodeId) -> Vec<EdgeId> {
        self.edge_entries()
            .filter(|(_, e)| e.nodes.contains(n))
            .map(|(id, _)| id)
            .collect()
    }

    /// The number of edges containing node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.edges.iter().filter(|e| e.nodes.contains(n)).count()
    }

    /// True if no edge's node set is a subset of another edge's node set.
    ///
    /// This is the paper's default assumption of a *reduced* hypergraph.
    /// Duplicate edges also make a hypergraph non-reduced.
    pub fn is_reduced(&self) -> bool {
        for (i, a) in self.edges.iter().enumerate() {
            for (j, b) in self.edges.iter().enumerate() {
                if i != j && a.nodes.is_subset(&b.nodes) && (a.nodes != b.nodes || i > j) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns the *reduction* of the hypergraph: edges whose node set is a
    /// (proper or improper) subset of another edge's node set are removed,
    /// keeping one representative of every maximal node set.
    ///
    /// The earliest edge with a given maximal node set is the representative,
    /// so labels of surviving edges are deterministic.
    pub fn reduce(&self) -> Hypergraph {
        let mut keep: Vec<bool> = vec![true; self.edges.len()];
        for i in 0..self.edges.len() {
            if !keep[i] {
                continue;
            }
            for (j, keep_j) in keep.iter_mut().enumerate() {
                if i == j || !*keep_j {
                    continue;
                }
                let (a, b) = (&self.edges[i].nodes, &self.edges[j].nodes);
                if b.is_proper_subset(a) || (a == b && j > i) {
                    *keep_j = false;
                }
            }
        }
        let edges = self
            .edges
            .iter()
            .zip(keep)
            .filter(|(_, k)| *k)
            .map(|(e, _)| e.clone())
            .collect();
        Hypergraph {
            universe: Arc::clone(&self.universe),
            edges,
        }
    }

    /// Returns a hypergraph with the same universe but a different edge list.
    ///
    /// This is the primitive used by reductions; empty edges are dropped.
    pub fn with_edges(&self, edges: Vec<Edge>) -> Hypergraph {
        Hypergraph {
            universe: Arc::clone(&self.universe),
            edges: edges.into_iter().filter(|e| !e.nodes.is_empty()).collect(),
        }
    }

    /// Removes the nodes in `x` from every edge, dropping edges that become
    /// empty.  The result is *not* reduced automatically.
    pub fn remove_nodes(&self, x: &NodeSet) -> Hypergraph {
        let edges = self
            .edges
            .iter()
            .map(|e| Edge::new(e.label.clone(), e.nodes.difference(x)))
            .filter(|e| !e.nodes.is_empty())
            .collect();
        self.with_edges(edges)
    }

    /// The canonical form of the hypergraph: the sorted set of its edges'
    /// node sets.  Two hypergraphs over the same universe are *equal as
    /// hypergraphs* iff their canonical forms agree (labels and edge order
    /// are ignored).
    pub fn canonical_edge_sets(&self) -> BTreeSet<NodeSet> {
        self.edges.iter().map(|e| e.nodes.clone()).collect()
    }

    /// Structural equality on node sets, ignoring labels, order and
    /// duplicate edges.
    pub fn same_edge_sets(&self, other: &Hypergraph) -> bool {
        self.canonical_edge_sets() == other.canonical_edge_sets()
    }

    /// True if some edge has exactly the node set `nodes`.
    pub fn contains_edge_set(&self, nodes: &NodeSet) -> bool {
        self.edges.iter().any(|e| &e.nodes == nodes)
    }

    /// True if `nodes` is a subset of at least one edge.
    ///
    /// In the paper's terminology, such a set is a *partial edge*.
    pub fn covers(&self, nodes: &NodeSet) -> bool {
        self.edges.iter().any(|e| nodes.is_subset(&e.nodes))
    }

    /// Renders the hypergraph as `{label{A,B}, label{B,C}}` with node names.
    pub fn display(&self) -> HypergraphDisplay<'_> {
        HypergraphDisplay { h: self }
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hypergraph{}", self.display())
    }
}

impl PartialEq for Hypergraph {
    /// Hypergraphs compare by their canonical edge sets (labels and edge
    /// order are irrelevant), provided they share a universe of the same
    /// names.
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.universe, &other.universe) || self.universe == other.universe)
            && self.same_edge_sets(other)
    }
}

impl Eq for Hypergraph {}

/// Helper returned by [`Hypergraph::display`].
pub struct HypergraphDisplay<'a> {
    h: &'a Hypergraph,
}

impl fmt::Display for HypergraphDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.h.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", e.nodes.display(self.h.universe()))?;
        }
        write!(f, "}}")
    }
}

/// Incremental builder for [`Hypergraph`].
#[derive(Default)]
pub struct HypergraphBuilder {
    universe: Universe,
    edges: Vec<(String, Vec<NodeId>)>,
}

impl HypergraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a node without attaching it to an edge yet.  Useful to fix
    /// node numbering for deterministic output.
    pub fn node(mut self, name: &str) -> Self {
        self.universe.intern(name);
        self
    }

    /// Adds an edge with an explicit label.
    pub fn edge<'a, I>(mut self, label: impl Into<String>, nodes: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let ids = nodes.into_iter().map(|n| self.universe.intern(n)).collect();
        self.edges.push((label.into(), ids));
        self
    }

    /// Finalizes the hypergraph.
    ///
    /// Returns an error if any edge is empty.  An edgeless hypergraph is
    /// permitted (it is the fixed point of a complete Graham reduction).
    pub fn build(self) -> Result<Hypergraph> {
        let universe = Arc::new(self.universe);
        let mut edges = Vec::with_capacity(self.edges.len());
        for (label, ids) in self.edges {
            if ids.is_empty() {
                return Err(HypergraphError::EmptyEdge(label));
            }
            let mut nodes = NodeSet::with_capacity(universe.len());
            for id in ids {
                nodes.insert(id);
            }
            edges.push(Edge::new(label, nodes));
        }
        Ok(Hypergraph { universe, edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acyclic hypergraph of the paper's Fig. 1.
    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn builder_and_from_edges_agree() {
        let b = Hypergraph::builder()
            .edge("ABC", ["A", "B", "C"])
            .edge("CDE", ["C", "D", "E"])
            .edge("AEF", ["A", "E", "F"])
            .edge("ACE", ["A", "C", "E"])
            .build()
            .unwrap();
        assert!(b.same_edge_sets(&fig1()));
        assert_eq!(b.edge_count(), 4);
        assert_eq!(b.node_count(), 6);
    }

    #[test]
    fn empty_edge_is_rejected() {
        let err = Hypergraph::builder().edge("bad", []).build().unwrap_err();
        assert_eq!(err, HypergraphError::EmptyEdge("bad".into()));
    }

    #[test]
    fn unknown_node_lookup_fails() {
        let h = fig1();
        assert!(h.node("A").is_ok());
        assert_eq!(
            h.node("Z").unwrap_err(),
            HypergraphError::UnknownNode("Z".into())
        );
        assert!(h.node_set(["A", "Z"]).is_err());
    }

    #[test]
    fn degree_and_edges_containing() {
        let h = fig1();
        let a = h.node("A").unwrap();
        let d = h.node("D").unwrap();
        assert_eq!(h.degree(a), 3);
        assert_eq!(h.degree(d), 1);
        assert_eq!(h.edges_containing(d), vec![EdgeId(1)]);
    }

    #[test]
    fn reduction_removes_subsumed_and_duplicate_edges() {
        let h = Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["A", "B"],
            vec!["A", "B", "C"],
            vec!["D"],
        ])
        .unwrap();
        assert!(!h.is_reduced());
        let r = h.reduce();
        assert!(r.is_reduced());
        assert_eq!(r.edge_count(), 2);
        assert!(r.contains_edge_set(&h.node_set(["A", "B", "C"]).unwrap()));
        assert!(r.contains_edge_set(&h.node_set(["D"]).unwrap()));
        // Representative keeps the earliest label.
        assert_eq!(r.edges()[0].label, "A-B-C");
    }

    #[test]
    fn default_labels_do_not_collide() {
        // Bare concatenation would label both edges "ABC".
        let h = Hypergraph::from_edges([vec!["A", "BC"], vec!["AB", "C"]]).unwrap();
        assert_eq!(h.edges()[0].label, "A-BC");
        assert_eq!(h.edges()[1].label, "AB-C");
        // Identical node lists still get distinct labels.
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["A", "B"], vec!["A", "B"]]).unwrap();
        assert_eq!(h.edges()[0].label, "A-B");
        assert_eq!(h.edges()[1].label, "A-B#2");
        assert_eq!(h.edges()[2].label, "A-B#3");
    }

    #[test]
    fn fig1_is_already_reduced() {
        assert!(fig1().is_reduced());
        assert_eq!(fig1().reduce().edge_count(), 4);
    }

    #[test]
    fn remove_nodes_drops_empty_edges() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B"]]).unwrap();
        let x = h.node_set(["B"]).unwrap();
        let r = h.remove_nodes(&x);
        assert_eq!(r.edge_count(), 1);
        assert_eq!(r.edges()[0].nodes, h.node_set(["A"]).unwrap());
    }

    #[test]
    fn covers_detects_partial_edges() {
        let h = fig1();
        assert!(h.covers(&h.node_set(["A", "E"]).unwrap()));
        assert!(h.covers(&h.node_set(["A", "C", "E"]).unwrap()));
        assert!(!h.covers(&h.node_set(["B", "D"]).unwrap()));
        assert!(h.covers(&NodeSet::new()));
    }

    #[test]
    fn structural_equality_ignores_labels_and_order() {
        let h1 = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let h2 = Hypergraph::builder()
            .node("A")
            .node("B")
            .node("C")
            .edge("second", ["B", "C"])
            .edge("first", ["B", "A"])
            .build()
            .unwrap();
        assert!(h1.same_edge_sets(&h2));
        assert_eq!(h1, h2);
    }

    #[test]
    fn display_lists_edges() {
        let h = Hypergraph::from_edges([vec!["A", "B"]]).unwrap();
        assert_eq!(format!("{}", h.display()), "{{A, B}}");
    }

    #[test]
    fn with_universe_validates_ids() {
        let u = Universe::from_names(["A", "B"]);
        let bad = Edge::new("x", NodeSet::from_ids([NodeId(5)]));
        assert_eq!(
            Hypergraph::with_universe(Arc::clone(&u), vec![bad]).unwrap_err(),
            HypergraphError::UnknownNodeId(5)
        );
        let ok = Edge::new("x", NodeSet::from_ids([NodeId(0), NodeId(1)]));
        assert!(Hypergraph::with_universe(u, vec![ok]).is_ok());
    }

    #[test]
    fn edge_lookup_errors_out_of_range() {
        let h = fig1();
        assert!(h.edge(EdgeId(0)).is_ok());
        assert_eq!(
            h.edge(EdgeId(99)).unwrap_err(),
            HypergraphError::UnknownEdge(99)
        );
    }
}
