//! Property-based tests for the bit-set node sets and the basic hypergraph
//! operations — the data structures every algorithm in the workspace leans
//! on.

use hypergraph::{Hypergraph, NodeId, NodeSet};
use proptest::prelude::*;

fn node_vec() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..200, 0..40)
}

fn set_from(ids: &[u32]) -> NodeSet {
    ids.iter().map(|&i| NodeId(i)).collect()
}

/// A small random hypergraph over named nodes n0..n11.
fn small_hypergraph() -> impl Strategy<Value = Hypergraph> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..12, 1..5), 1..8).prop_map(
        |edges| {
            Hypergraph::from_edges(
                edges
                    .iter()
                    .map(|e| e.iter().map(|i| format!("n{i}")).collect::<Vec<_>>()),
            )
            .expect("nonempty edges")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_is_commutative_and_associative(a in node_vec(), b in node_vec(), c in node_vec()) {
        let (a, b, c) = (set_from(&a), set_from(&b), set_from(&c));
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn intersection_distributes_over_union(a in node_vec(), b in node_vec(), c in node_vec()) {
        let (a, b, c) = (set_from(&a), set_from(&b), set_from(&c));
        prop_assert_eq!(
            a.intersection(&b.union(&c)),
            a.intersection(&b).union(&a.intersection(&c))
        );
    }

    #[test]
    fn difference_and_subset_laws(a in node_vec(), b in node_vec()) {
        let (a, b) = (set_from(&a), set_from(&b));
        let diff = a.difference(&b);
        prop_assert!(diff.is_subset(&a));
        prop_assert!(diff.is_disjoint(&b));
        prop_assert_eq!(diff.union(&a.intersection(&b)), a.clone());
        prop_assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
    }

    #[test]
    fn in_place_ops_match_functional_ops(a in node_vec(), b in node_vec()) {
        let (a, b) = (set_from(&a), set_from(&b));
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(u, a.union(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(i, a.intersection(&b));
        let mut d = a.clone();
        d.subtract(&b);
        prop_assert_eq!(d, a.difference(&b));
    }

    #[test]
    fn iteration_is_sorted_and_lossless(ids in node_vec()) {
        let set = set_from(&ids);
        let collected: Vec<u32> = set.iter().map(|n| n.0).collect();
        let mut expected: Vec<u32> = ids.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(collected, expected);
        prop_assert_eq!(set.len(), set.iter().count());
    }

    #[test]
    fn insert_remove_roundtrip(ids in node_vec(), extra in 0u32..200) {
        let mut set = set_from(&ids);
        let had = set.contains(NodeId(extra));
        let inserted = set.insert(NodeId(extra));
        prop_assert_eq!(inserted, !had);
        prop_assert!(set.contains(NodeId(extra)));
        let removed = set.remove(NodeId(extra));
        prop_assert!(removed);
        prop_assert!(!set.contains(NodeId(extra)));
        prop_assert_eq!(set, {
            let mut s = set_from(&ids);
            s.remove(NodeId(extra));
            s
        });
    }

    #[test]
    fn reduction_is_idempotent_and_subset_free(h in small_hypergraph()) {
        let r = h.reduce();
        prop_assert!(r.is_reduced());
        prop_assert!(r.reduce().same_edge_sets(&r));
        // Every original edge is covered by some surviving edge.
        for e in h.edges() {
            prop_assert!(r.covers(&e.nodes));
        }
        prop_assert!(r.edge_count() <= h.edge_count());
    }

    #[test]
    fn components_partition_the_nodes(h in small_hypergraph()) {
        let comps = h.components();
        let mut union = NodeSet::new();
        for (i, c) in comps.iter().enumerate() {
            prop_assert!(!c.is_empty());
            for other in &comps[i + 1..] {
                prop_assert!(c.is_disjoint(other));
            }
            union.union_with(c);
        }
        prop_assert_eq!(union, h.nodes());
        prop_assert_eq!(comps.len() <= 1, h.is_connected());
    }

    #[test]
    fn induced_subhypergraph_is_node_generated(h in small_hypergraph(), selector in any::<u64>()) {
        let nodes: Vec<NodeId> = h.nodes().iter().collect();
        let subset: NodeSet = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| selector & (1 << (i % 60)) != 0)
            .map(|(_, &n)| n)
            .collect();
        let g = h.induced(&subset);
        prop_assert!(g.is_reduced());
        prop_assert!(g.nodes().is_subset(&subset));
        prop_assert!(h.is_node_generated_subhypergraph(&g));
        // Induced is idempotent: re-inducing the result on its own node
        // set is a no-op.
        prop_assert!(g.induced(&g.nodes()).same_edge_sets(&g));
    }

    #[test]
    fn articulation_sets_really_disconnect(h in small_hypergraph()) {
        let base = h.component_count();
        for x in h.articulation_sets() {
            prop_assert!(h.components_without(&x).len() > base);
            prop_assert!(h.is_articulation_set(&x));
        }
    }

    #[test]
    fn primal_graph_connectivity_matches_hypergraph(h in small_hypergraph()) {
        prop_assert_eq!(h.primal_graph().is_connected(), h.is_connected());
        prop_assert_eq!(h.primal_graph().nodes(), h.nodes());
    }
}
