//! Cyclic hypergraph families and general random hypergraphs.

use hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ring of `k ≥ 3` binary edges: {N0,N1}, {N1,N2}, …, {N(k-1),N0}.
/// Always cyclic.
pub fn ring(k: usize) -> Hypergraph {
    assert!(k >= 3, "a ring needs at least three edges");
    let names: Vec<String> = (0..k).map(|i| format!("N{i:04}")).collect();
    let mut builder = HypergraphBuilder::new();
    for i in 0..k {
        builder = builder.edge(
            format!("E{i}"),
            [names[i].as_str(), names[(i + 1) % k].as_str()],
        );
    }
    builder.build().expect("nonempty edges")
}

/// A "hyper-ring" of `k ≥ 3` edges of width `w ≥ 2`, consecutive edges
/// overlapping in one node.  Cyclic for every `k ≥ 3`.
pub fn hyper_ring(k: usize, w: usize) -> Hypergraph {
    assert!(k >= 3 && w >= 2);
    let mut builder = HypergraphBuilder::new();
    // Shared boundary nodes B0..B(k-1); edge i = {Bi, interior…, B(i+1 mod k)}.
    for i in 0..k {
        let mut names = vec![format!("B{i:04}")];
        for j in 0..w.saturating_sub(2) {
            names.push(format!("I{i:04}_{j}"));
        }
        names.push(format!("B{:04}", (i + 1) % k));
        builder = builder.edge(format!("E{i}"), names.iter().map(String::as_str));
    }
    builder.build().expect("nonempty edges")
}

/// All `n·(n-1)/2` pairs over `n ≥ 3` nodes (the "clique" of binary edges).
/// Cyclic for every `n ≥ 3`.
pub fn pair_clique(n: usize) -> Hypergraph {
    assert!(n >= 3);
    let names: Vec<String> = (0..n).map(|i| format!("N{i:04}")).collect();
    let mut builder = HypergraphBuilder::new();
    for i in 0..n {
        for j in i + 1..n {
            builder = builder.edge(format!("E{i}_{j}"), [names[i].as_str(), names[j].as_str()]);
        }
    }
    builder.build().expect("nonempty edges")
}

/// A `rows × cols` grid of binary edges (the grid graph seen as a
/// hypergraph).  Cyclic whenever both dimensions are at least 2.
pub fn grid(rows: usize, cols: usize) -> Hypergraph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let name = |r: usize, c: usize| format!("G{r:03}_{c:03}");
    let mut builder = HypergraphBuilder::new();
    let mut idx = 0;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder = builder.edge(
                    format!("H{idx}"),
                    [name(r, c).as_str(), name(r, c + 1).as_str()],
                );
                idx += 1;
            }
            if r + 1 < rows {
                builder = builder.edge(
                    format!("V{idx}"),
                    [name(r, c).as_str(), name(r + 1, c).as_str()],
                );
                idx += 1;
            }
        }
    }
    builder.build().expect("nonempty edges")
}

/// Parameters for [`random_hypergraph`]: `edges` random subsets of a pool of
/// `nodes` nodes, each of size between `min_edge_size` and `max_edge_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomParams {
    /// Number of edges.
    pub edges: usize,
    /// Size of the node pool.
    pub nodes: usize,
    /// Minimum edge size.
    pub min_edge_size: usize,
    /// Maximum edge size.
    pub max_edge_size: usize,
}

impl Default for RandomParams {
    fn default() -> Self {
        Self {
            edges: 12,
            nodes: 16,
            min_edge_size: 2,
            max_edge_size: 4,
        }
    }
}

/// A uniformly random hypergraph (usually cyclic once edges outnumber
/// nodes).  Deterministic per `(params, seed)`.
pub fn random_hypergraph(params: RandomParams, seed: u64) -> Hypergraph {
    assert!(params.edges >= 1 && params.nodes >= params.max_edge_size);
    assert!(params.min_edge_size >= 1 && params.max_edge_size >= params.min_edge_size);
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..params.nodes).map(|i| format!("N{i:05}")).collect();
    let mut builder = HypergraphBuilder::new();
    for i in 0..params.edges {
        let size = rng.gen_range(params.min_edge_size..=params.max_edge_size);
        let mut pool: Vec<usize> = (0..params.nodes).collect();
        let mut chosen = Vec::with_capacity(size);
        for _ in 0..size {
            let k = rng.gen_range(0..pool.len());
            chosen.push(pool.swap_remove(k));
        }
        builder = builder.edge(format!("E{i}"), chosen.iter().map(|&k| names[k].as_str()));
    }
    builder.build().expect("nonempty edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use acyclic::AcyclicityExt;

    #[test]
    fn rings_and_cliques_are_cyclic() {
        for k in 3..8 {
            assert!(!ring(k).is_acyclic(), "ring({k}) must be cyclic");
            assert!(
                !hyper_ring(k, 3).is_acyclic(),
                "hyper_ring({k},3) must be cyclic"
            );
        }
        for n in 3..7 {
            assert!(!pair_clique(n).is_acyclic());
        }
    }

    #[test]
    fn grids_are_cyclic_when_two_dimensional() {
        assert!(!grid(2, 2).is_acyclic());
        assert!(!grid(3, 4).is_acyclic());
        // A 1×n grid is a chain and therefore acyclic.
        assert!(grid(1, 5).is_acyclic());
    }

    #[test]
    fn generators_produce_expected_sizes() {
        assert_eq!(ring(5).edge_count(), 5);
        assert_eq!(pair_clique(4).edge_count(), 6);
        assert_eq!(grid(2, 3).edge_count(), 7);
        assert_eq!(hyper_ring(4, 4).edge_count(), 4);
        assert_eq!(hyper_ring(4, 4).node_count(), 4 + 4 * 2);
    }

    #[test]
    fn random_hypergraph_is_deterministic_and_sized() {
        let p = RandomParams::default();
        let a = random_hypergraph(p, 3);
        let b = random_hypergraph(p, 3);
        assert!(a.same_edge_sets(&b));
        assert_eq!(a.edge_count(), p.edges);
        for e in a.edges() {
            assert!(e.len() >= p.min_edge_size && e.len() <= p.max_edge_size);
        }
    }

    #[test]
    fn random_hypergraphs_include_cyclic_instances() {
        // With many small edges over few nodes, cyclic instances dominate;
        // make sure the family actually exercises the cyclic code paths.
        let cyclic_count = (0..20)
            .filter(|&seed| {
                !random_hypergraph(
                    RandomParams {
                        edges: 12,
                        nodes: 8,
                        min_edge_size: 2,
                        max_edge_size: 3,
                    },
                    seed,
                )
                .is_acyclic()
            })
            .count();
        assert!(cyclic_count > 10);
    }
}
