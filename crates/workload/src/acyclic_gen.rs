//! Random acyclic hypergraph generation.
//!
//! Acyclic hypergraphs are generated *by construction*: edges are attached
//! one at a time to a random already-generated edge, reusing a random subset
//! of its nodes and adding fresh ones.  The attachment order is a join tree,
//! so the result is always α-acyclic, connected and reduced (every edge
//! contains at least one fresh node, so no edge subsumes another).

use hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_acyclic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcyclicParams {
    /// Number of edges to generate (≥ 1).
    pub edges: usize,
    /// Minimum edge size (≥ 2 recommended).
    pub min_edge_size: usize,
    /// Maximum edge size (≥ `min_edge_size`).
    pub max_edge_size: usize,
    /// Maximum number of nodes shared with the parent edge (≥ 1).
    pub max_overlap: usize,
}

impl Default for AcyclicParams {
    fn default() -> Self {
        Self {
            edges: 16,
            min_edge_size: 2,
            max_edge_size: 5,
            max_overlap: 2,
        }
    }
}

impl AcyclicParams {
    /// Convenience constructor fixing only the edge count.
    pub fn with_edges(edges: usize) -> Self {
        Self {
            edges,
            ..Self::default()
        }
    }
}

/// Generates a random acyclic hypergraph.
///
/// The same `(params, seed)` pair always produces the same hypergraph.
pub fn random_acyclic(params: AcyclicParams, seed: u64) -> Hypergraph {
    assert!(params.edges >= 1, "need at least one edge");
    assert!(params.min_edge_size >= 1 && params.max_edge_size >= params.min_edge_size);
    assert!(params.max_overlap >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = HypergraphBuilder::new();
    // Track generated edges as lists of node names so overlaps can be drawn.
    let mut edges: Vec<Vec<String>> = Vec::with_capacity(params.edges);
    let mut next_node = 0usize;
    let fresh = |next: &mut usize| {
        let name = format!("N{next:05}");
        *next += 1;
        name
    };

    for i in 0..params.edges {
        let size = rng.gen_range(params.min_edge_size..=params.max_edge_size);
        let mut nodes: Vec<String> = Vec::with_capacity(size);
        if i > 0 {
            let parent = &edges[rng.gen_range(0..i)];
            // Overlap strictly less than both the parent and the new edge,
            // so no edge ever subsumes another and the result stays reduced
            // (provided edges have at least two nodes).
            let cap = params
                .max_overlap
                .min(parent.len().saturating_sub(1))
                .min(size.saturating_sub(1))
                .max(1);
            let overlap = rng.gen_range(1..=cap);
            // Draw `overlap` distinct nodes from the parent.
            let mut pool = parent.clone();
            for _ in 0..overlap {
                let k = rng.gen_range(0..pool.len());
                nodes.push(pool.swap_remove(k));
            }
        }
        while nodes.len() < size {
            nodes.push(fresh(&mut next_node));
        }
        builder = builder.edge(format!("E{i}"), nodes.iter().map(String::as_str));
        edges.push(nodes);
    }
    builder.build().expect("generated edges are nonempty")
}

/// A chain of `edges` hyperedges of width `width`, consecutive edges sharing
/// `overlap` nodes — the "path schema" workload.
pub fn chain(edges: usize, width: usize, overlap: usize) -> Hypergraph {
    assert!(edges >= 1 && width > overlap && overlap >= 1);
    let mut builder = HypergraphBuilder::new();
    let step = width - overlap;
    for i in 0..edges {
        let start = i * step;
        let names: Vec<String> = (start..start + width).map(|k| format!("N{k:05}")).collect();
        builder = builder.edge(format!("E{i}"), names.iter().map(String::as_str));
    }
    builder.build().expect("nonempty edges")
}

/// A star: one hub edge containing all `satellites` join keys, plus one
/// satellite edge per key — the "star schema" workload.
pub fn star(satellites: usize, satellite_width: usize) -> Hypergraph {
    assert!(satellites >= 1 && satellite_width >= 2);
    let mut builder = HypergraphBuilder::new();
    let keys: Vec<String> = (0..satellites).map(|i| format!("K{i:03}")).collect();
    builder = builder.edge("HUB", keys.iter().map(String::as_str));
    for (i, key) in keys.iter().enumerate() {
        let mut names = vec![key.clone()];
        for j in 1..satellite_width {
            names.push(format!("S{i:03}_{j}"));
        }
        builder = builder.edge(format!("SAT{i}"), names.iter().map(String::as_str));
    }
    builder.build().expect("nonempty edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use acyclic::AcyclicityExt;

    #[test]
    fn random_acyclic_is_acyclic_connected_and_reduced() {
        for seed in 0..20 {
            let h = random_acyclic(AcyclicParams::with_edges(20), seed);
            assert_eq!(h.edge_count(), 20);
            assert!(h.is_acyclic(), "seed {seed} generated a cyclic hypergraph");
            assert!(h.is_connected());
            assert!(h.is_reduced());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_acyclic(AcyclicParams::default(), 7);
        let b = random_acyclic(AcyclicParams::default(), 7);
        let c = random_acyclic(AcyclicParams::default(), 8);
        assert!(a.same_edge_sets(&b));
        // Different seeds must give different hypergraphs (for this pair of
        // seeds, with the workspace RNG; collisions would be astronomically
        // unlikely but are pinned down here deterministically).
        assert!(!a.same_edge_sets(&c));
    }

    #[test]
    fn parameters_are_respected() {
        let params = AcyclicParams {
            edges: 30,
            min_edge_size: 3,
            max_edge_size: 6,
            max_overlap: 2,
        };
        let h = random_acyclic(params, 123);
        for e in h.edges() {
            assert!(e.len() >= 3 && e.len() <= 6);
        }
    }

    #[test]
    fn chain_and_star_shapes() {
        let c = chain(10, 3, 1);
        assert_eq!(c.edge_count(), 10);
        assert!(c.is_acyclic());
        assert!(c.is_connected());

        let s = star(8, 3);
        assert_eq!(s.edge_count(), 9);
        assert!(s.is_acyclic());
        assert!(s.is_connected());
        // Hub degree: every key appears in the hub and exactly one satellite.
        let hub = &s.edges()[0];
        assert_eq!(hub.len(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_edges_is_rejected() {
        random_acyclic(AcyclicParams::with_edges(0), 1);
    }
}
