//! Relation-instance generators for a schema hypergraph.
//!
//! Two regimes matter for the experiments:
//!
//! * [`random_database`] — independent random tuples per relation, with a
//!   tunable domain size controlling join selectivity.  Such instances
//!   usually contain dangling tuples, which is what makes the Yannakakis
//!   full reducer shine in benchmark B4.
//! * [`consistent_database`] — the globally consistent repair of a random
//!   instance (every relation is a projection of the full join), the regime
//!   in which universal-relation query answering via canonical connections
//!   agrees with the join-everything semantics.

use hypergraph::{EdgeId, Hypergraph, NodeSet};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use reldb::{make_globally_consistent, Database, Tuple};

/// The benchmark-B4 query attributes of a schema: the two "far apart"
/// attributes (the first attribute of the first edge and the last of the
/// last edge) — shared by the criterion bench and `hyperq bench` so both
/// harnesses measure the same query.
///
/// # Panics
/// Panics if the schema has no edges or an empty edge.
pub fn far_apart(h: &Hypergraph) -> NodeSet {
    let first = h.edges()[0].nodes.first().expect("nonempty edge");
    let last = h.edges()[h.edge_count() - 1]
        .nodes
        .iter()
        .last()
        .expect("nonempty edge");
    NodeSet::from_ids([first, last])
}

/// Parameters for the random data generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataParams {
    /// Tuples generated per relation (before set-semantics deduplication).
    pub tuples_per_relation: usize,
    /// Every attribute draws values from `0..domain`.
    pub domain: i64,
    /// Zipf skew exponent `s`: `0.0` (the default) draws uniformly; `s > 0`
    /// draws value `k` with probability proportional to `1/(k+1)^s`, so
    /// large `s` concentrates the mass on a few hot keys — the
    /// high-duplicate regime where sort-merge kernels beat hash builds.
    pub skew: f64,
    /// Output bound for skewed workloads: with `key_cap > 0`, a value may
    /// occur at most `key_cap` times per *join column* (an attribute shared
    /// by two or more schema edges) of each relation — a draw that would
    /// exceed the cap deterministically spills to the next under-cap value.
    /// A binary join then emits at most `key_cap²` tuples per key, so the
    /// output stays proportional to the input even under heavy Zipf skew
    /// and the benchmark isolates kernel cost from output size.  `0` (the
    /// default) leaves draws unbounded.  Non-join columns always keep their
    /// raw (skewed) draws.
    pub key_cap: usize,
}

impl Default for DataParams {
    fn default() -> Self {
        Self {
            tuples_per_relation: 64,
            domain: 8,
            skew: 0.0,
            key_cap: 0,
        }
    }
}

/// Inverse-CDF sampler for the (finite) Zipf distribution over
/// `0..domain`: value `k` has probability proportional to `1/(k+1)^s`.
/// The CDF is precomputed once per generator run; each sample is one
/// uniform draw plus a binary search.
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(domain: i64, s: f64) -> Self {
        assert!(domain >= 1 && s > 0.0);
        let mut cdf = Vec::with_capacity(domain as usize);
        let mut total = 0.0f64;
        for k in 0..domain {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> i64 {
        // 53-bit uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf.partition_point(|&c| c <= u) as i64
    }
}

/// Fills every relation of `schema` with independent random tuples.
///
/// Tuples are loaded through the column-order bulk path
/// ([`Database::insert_values`]): edge node sets iterate in ascending
/// attribute order, which is exactly the relation's column order, so no
/// per-tuple attribute map is ever built.
pub fn random_database(schema: &Hypergraph, params: DataParams, seed: u64) -> Database {
    assert!(params.domain >= 1);
    assert!(params.skew >= 0.0, "skew must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = (params.skew > 0.0).then(|| ZipfSampler::new(params.domain, params.skew));
    let mut db = Database::empty(schema.clone());
    let mut row: Vec<i64> = Vec::new();
    for (i, e) in schema.edges().iter().enumerate() {
        // Join columns (attributes shared with another edge) are the ones
        // whose duplication multiplies join outputs; with `key_cap` set,
        // their per-value occurrence counts are tracked and capped.
        let capped: Vec<bool> = e
            .nodes
            .iter()
            .map(|n| params.key_cap > 0 && schema.degree(n) >= 2)
            .collect();
        let mut counts: Vec<Vec<u32>> = capped
            .iter()
            .map(|&c| {
                if c {
                    vec![0u32; params.domain as usize]
                } else {
                    Vec::new()
                }
            })
            .collect();
        for _ in 0..params.tuples_per_relation {
            row.clear();
            for (col, &cap_col) in capped.iter().enumerate() {
                let mut v = match &zipf {
                    None => rng.gen_range(0..params.domain),
                    Some(z) => z.sample(&mut rng),
                };
                if cap_col {
                    let counts = &mut counts[col];
                    if counts[v as usize] >= params.key_cap as u32 {
                        // Deterministic spill: walk to the next value still
                        // under the cap (wrapping).  If every value is at
                        // the cap the raw draw stands — the cap is a bound
                        // on skew, not on the total row count.
                        let mut probe = v;
                        for _ in 0..params.domain {
                            probe = (probe + 1) % params.domain;
                            if counts[probe as usize] < params.key_cap as u32 {
                                v = probe;
                                break;
                            }
                        }
                    }
                    counts[v as usize] += 1;
                }
                row.push(v);
            }
            db.insert_values(EdgeId(i as u32), row.iter().copied());
        }
    }
    db
}

/// A globally consistent database: generate random tuples, take the full
/// join, and re-project every relation from it.
///
/// Joining the projections of a join of projections is idempotent, so the
/// result is exactly consistent.  Note the full join is computed here, so
/// keep `schema` and `params` moderate.
pub fn consistent_database(schema: &Hypergraph, params: DataParams, seed: u64) -> Database {
    let raw = random_database(schema, params, seed);
    make_globally_consistent(&raw)
}

/// The classic pairwise-consistent but globally inconsistent instance over a
/// ring of binary edges: edge `i` relates `x` to `x + [i == k-1]` modulo 2,
/// so every pair of adjacent relations joins but the full cycle cannot
/// close.  Used by the consistency experiment.
pub fn inconsistent_ring_database(k: usize) -> Database {
    let schema = crate::cyclic_gen::ring(k);
    let mut db = Database::empty(schema.clone());
    for (i, e) in schema.edges().iter().enumerate() {
        let nodes: Vec<_> = e.nodes.iter().collect();
        // Nodes are N_i and N_{(i+1) mod k}; order them as (from, to).
        let from = schema.node(&format!("N{i:04}")).expect("ring node");
        let to = schema
            .node(&format!("N{:04}", (i + 1) % k))
            .expect("ring node");
        debug_assert!(nodes.contains(&from) && nodes.contains(&to));
        for x in 0..2i64 {
            let y = if i == k - 1 { (x + 1) % 2 } else { x };
            db.insert(EdgeId(i as u32), Tuple::from_pairs([(from, x), (to, y)]));
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic_gen::chain;
    use reldb::{is_globally_consistent, is_pairwise_consistent};

    #[test]
    fn random_database_is_deterministic_and_sized() {
        let schema = chain(4, 3, 1);
        let a = random_database(&schema, DataParams::default(), 1);
        let b = random_database(&schema, DataParams::default(), 1);
        assert_eq!(a.tuple_count(), b.tuple_count());
        assert!(a.tuple_count() > 0);
        // Set semantics may deduplicate, but never exceed the requested count.
        for r in a.relations() {
            assert!(r.len() <= DataParams::default().tuples_per_relation);
        }
    }

    #[test]
    fn consistent_database_is_globally_consistent() {
        let schema = chain(3, 3, 1);
        let db = consistent_database(
            &schema,
            DataParams {
                tuples_per_relation: 20,
                domain: 3,
                skew: 0.0,
                key_cap: 0,
            },
            42,
        );
        assert!(is_globally_consistent(&db));
        assert!(is_pairwise_consistent(&db));
    }

    #[test]
    fn inconsistent_ring_is_pairwise_but_not_globally_consistent() {
        for k in [3, 4, 5] {
            let db = inconsistent_ring_database(k);
            assert!(
                is_pairwise_consistent(&db),
                "ring({k}) should be pairwise consistent"
            );
            assert!(
                !is_globally_consistent(&db),
                "ring({k}) should not be globally consistent"
            );
            assert!(db.full_join().is_empty());
        }
    }

    #[test]
    fn zipf_skew_concentrates_values() {
        let schema = chain(2, 2, 1);
        let params = DataParams {
            tuples_per_relation: 400,
            domain: 64,
            skew: 1.5,
            key_cap: 0,
        };
        let skewed = random_database(&schema, params, 3);
        let uniform = random_database(
            &schema,
            DataParams {
                skew: 0.0,
                ..params
            },
            3,
        );
        // Count how often the hottest value (0) appears in the first column
        // of the first relation.
        let hot = |db: &Database| {
            db.relations()[0]
                .tuples()
                .filter(|t| {
                    t.iter()
                        .next()
                        .is_some_and(|(_, v)| *v == reldb::Value::Int(0))
                })
                .count()
        };
        assert!(
            hot(&skewed) > 4 * hot(&uniform).max(1),
            "skewed data must concentrate on the hot key: {} vs {}",
            hot(&skewed),
            hot(&uniform)
        );
        // Determinism per seed holds for the skewed path too.
        let again = random_database(&schema, params, 3);
        assert_eq!(skewed.tuple_count(), again.tuple_count());
    }

    #[test]
    fn key_cap_bounds_join_column_duplication() {
        let schema = chain(3, 2, 1);
        let params = DataParams {
            tuples_per_relation: 300,
            domain: 128,
            skew: 1.5,
            key_cap: 4,
        };
        let capped = random_database(&schema, params, 11);
        let uncapped = random_database(
            &schema,
            DataParams {
                key_cap: 0,
                ..params
            },
            11,
        );
        // Every join-column value occurs at most key_cap times per relation.
        let max_dup = |db: &Database| {
            db.relations()
                .iter()
                .flat_map(|r| {
                    r.attributes()
                        .iter()
                        .filter(|&n| schema.degree(n) >= 2)
                        .map(|n| {
                            let mut counts = std::collections::HashMap::new();
                            for t in r.tuples() {
                                *counts.entry(t.get(n).cloned()).or_insert(0usize) += 1;
                            }
                            counts.into_values().max().unwrap_or(0)
                        })
                        .collect::<Vec<_>>()
                })
                .max()
                .unwrap_or(0)
        };
        assert!(
            max_dup(&capped) <= 4,
            "cap violated: {} > 4",
            max_dup(&capped)
        );
        assert!(
            max_dup(&uncapped) > 8,
            "uncapped Zipf draws must concentrate: {}",
            max_dup(&uncapped)
        );
        // Bounded key duplication bounds the join output.
        assert!(capped.full_join().len() < uncapped.full_join().len());
        // Determinism per seed holds for the capped path.
        assert_eq!(
            random_database(&schema, params, 11).tuple_count(),
            capped.tuple_count()
        );
    }

    #[test]
    fn zipf_sampler_covers_and_bounds_domain() {
        let z = ZipfSampler::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [0usize; 5];
        for _ in 0..2000 {
            let v = z.sample(&mut rng);
            assert!((0..5).contains(&v));
            seen[v as usize] += 1;
        }
        // Monotone-ish head: the hottest value dominates the coldest.
        assert!(seen[0] > seen[4]);
        assert!(seen.iter().all(|&c| c > 0));
    }

    #[test]
    fn small_domain_produces_joinable_data() {
        let schema = chain(3, 2, 1);
        let db = random_database(
            &schema,
            DataParams {
                tuples_per_relation: 30,
                domain: 2,
                skew: 0.0,
                key_cap: 0,
            },
            7,
        );
        assert!(!db.full_join().is_empty());
    }
}
