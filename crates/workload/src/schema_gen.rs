//! Database-schema-shaped hypergraph families.
//!
//! These are the shapes the paper's universal-relation motivation cares
//! about: chains of foreign-key joins, star and snowflake schemas, and a
//! fixed TPC-style order/lineitem-like schema.  All of them are acyclic;
//! [`with_cycle`] adds a shortcut edge that makes any of them cyclic, which
//! is how the benchmarks obtain matched acyclic/cyclic pairs.

use hypergraph::{Hypergraph, HypergraphBuilder};

/// A snowflake: a star whose satellites each have their own dimension edges
/// hanging off them.
pub fn snowflake(arms: usize, depth: usize, width: usize) -> Hypergraph {
    assert!(arms >= 1 && depth >= 1 && width >= 2);
    let mut builder = HypergraphBuilder::new();
    let hub_keys: Vec<String> = (0..arms).map(|a| format!("K{a:03}_0")).collect();
    builder = builder.edge("FACT", hub_keys.iter().map(String::as_str));
    for a in 0..arms {
        for d in 0..depth {
            let mut names = vec![format!("K{a:03}_{d}")];
            for w in 1..width.saturating_sub(1) {
                names.push(format!("D{a:03}_{d}_{w}"));
            }
            names.push(format!("K{a:03}_{}", d + 1));
            builder = builder.edge(format!("DIM{a}_{d}"), names.iter().map(String::as_str));
        }
    }
    builder.build().expect("nonempty edges")
}

/// A snowflake whose dimensions branch: a fact hub with `fanout` arms, each
/// dimension edge at depth `d < depth` having `fanout` child dimensions of
/// its own, every edge `width` attributes wide (one key shared with the
/// parent, one key per child, padding attributes in between).
///
/// Unlike [`snowflake`] (whose arms are chains), the dimension tree is a
/// complete `fanout`-ary tree, so the join tree has `fanout^d` edges at
/// depth `d` — the shape that exercises the level-synchronous reducer's
/// target-sharding (chains only ever exercise probe-sharding).
pub fn snowflake_tree(depth: usize, fanout: usize, width: usize) -> Hypergraph {
    assert!(depth >= 1 && fanout >= 1 && width >= 2);
    let mut builder = HypergraphBuilder::new();
    // The hub shares one key with each top-level dimension.
    let hub_keys: Vec<String> = (0..fanout).map(|a| format!("K{a}")).collect();
    builder = builder.edge("FACT", hub_keys.iter().map(String::as_str));
    // Breadth-first over the dimension tree; each node is named by its
    // root-to-node path of child indices.
    let mut frontier: Vec<String> = (0..fanout).map(|a| a.to_string()).collect();
    for d in 0..depth {
        let mut next = Vec::new();
        for path in frontier {
            let mut names = vec![format!("K{path}")];
            for w in 0..width.saturating_sub(2) {
                names.push(format!("D{path}_{w}"));
            }
            if d + 1 < depth {
                for c in 0..fanout {
                    names.push(format!("K{path}{c}"));
                    next.push(format!("{path}{c}"));
                }
            } else {
                names.push(format!("L{path}"));
            }
            builder = builder.edge(format!("DIM{path}"), names.iter().map(String::as_str));
        }
        frontier = next;
    }
    builder.build().expect("nonempty edges")
}

/// A fixed order-management schema in the spirit of TPC benchmarks:
/// region–nation–customer–orders–lineitem–part/supplier.  Eight relations,
/// acyclic, with realistic key sharing.
pub fn tpc_like() -> Hypergraph {
    Hypergraph::builder()
        .edge("REGION", ["regionkey", "r_name"])
        .edge("NATION", ["nationkey", "regionkey", "n_name"])
        .edge("CUSTOMER", ["custkey", "nationkey", "c_name", "acctbal"])
        .edge("ORDERS", ["orderkey", "custkey", "orderdate", "totalprice"])
        .edge(
            "LINEITEM",
            ["orderkey", "partkey", "suppkey", "quantity", "price"],
        )
        .edge("PARTSUPP", ["partkey", "suppkey", "supplycost"])
        .edge("PART", ["partkey", "p_name", "brand"])
        .edge("SUPPLIER", ["suppkey", "s_name", "s_nationkey"])
        .build()
        .expect("static schema")
}

/// Adds a "shortcut" edge connecting the first node of the first edge with
/// the last node of the last edge *and nothing else*, which creates a cycle
/// in any connected schema with at least two edges whose reduction does not
/// already cover that pair.
pub fn with_cycle(h: &Hypergraph) -> Hypergraph {
    let first_edge = &h.edges()[0].nodes;
    let last_edge = &h.edges()[h.edge_count() - 1].nodes;
    let a = first_edge.iter().next().expect("nonempty edge");
    let b = last_edge.iter().last().expect("nonempty edge");
    let universe = h.universe();
    let mut builder = HypergraphBuilder::new();
    for e in h.edges() {
        let names: Vec<&str> = e.nodes.iter().map(|n| universe.name(n)).collect();
        builder = builder.edge(e.label.clone(), names);
    }
    builder = builder.edge("SHORTCUT", [universe.name(a), universe.name(b)]);
    builder.build().expect("nonempty edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic_gen::{chain, star};
    use acyclic::AcyclicityExt;

    #[test]
    fn snowflake_is_acyclic_and_sized() {
        let h = snowflake(3, 2, 3);
        assert_eq!(h.edge_count(), 1 + 3 * 2);
        assert!(h.is_acyclic());
        assert!(h.is_connected());
    }

    #[test]
    fn snowflake_tree_is_acyclic_with_fanout_levels() {
        let h = snowflake_tree(2, 2, 3);
        // FACT + 2 dimensions at depth 1 + 4 at depth 2.
        assert_eq!(h.edge_count(), 1 + 2 + 4);
        assert!(h.is_acyclic());
        assert!(h.is_connected());
        let tree = acyclic::join_tree(&h).expect("acyclic");
        let levels = tree.levels();
        assert!(
            levels.iter().any(|l| l.len() >= 2),
            "fanout tree must produce multi-edge levels"
        );
        let deep = snowflake_tree(3, 3, 4);
        assert_eq!(deep.edge_count(), 1 + 3 + 9 + 27);
        assert!(deep.is_acyclic());
    }

    #[test]
    fn tpc_like_is_acyclic() {
        let h = tpc_like();
        assert_eq!(h.edge_count(), 8);
        assert!(h.is_acyclic());
        assert!(h.is_connected());
        assert!(h.is_reduced());
    }

    #[test]
    fn with_cycle_makes_schemas_cyclic() {
        for base in [chain(6, 3, 1), star(5, 3), snowflake(2, 2, 3), tpc_like()] {
            assert!(base.is_acyclic());
            let cyclic = with_cycle(&base);
            assert_eq!(cyclic.edge_count(), base.edge_count() + 1);
            assert!(
                !cyclic.is_acyclic(),
                "shortcut failed to create a cycle in {}",
                base.display()
            );
        }
    }
}
