//! Database-schema-shaped hypergraph families.
//!
//! These are the shapes the paper's universal-relation motivation cares
//! about: chains of foreign-key joins, star and snowflake schemas, and a
//! fixed TPC-style order/lineitem-like schema.  All of them are acyclic;
//! [`with_cycle`] adds a shortcut edge that makes any of them cyclic, which
//! is how the benchmarks obtain matched acyclic/cyclic pairs.

use hypergraph::{Hypergraph, HypergraphBuilder};

/// A snowflake: a star whose satellites each have their own dimension edges
/// hanging off them.
pub fn snowflake(arms: usize, depth: usize, width: usize) -> Hypergraph {
    assert!(arms >= 1 && depth >= 1 && width >= 2);
    let mut builder = HypergraphBuilder::new();
    let hub_keys: Vec<String> = (0..arms).map(|a| format!("K{a:03}_0")).collect();
    builder = builder.edge("FACT", hub_keys.iter().map(String::as_str));
    for a in 0..arms {
        for d in 0..depth {
            let mut names = vec![format!("K{a:03}_{d}")];
            for w in 1..width.saturating_sub(1) {
                names.push(format!("D{a:03}_{d}_{w}"));
            }
            names.push(format!("K{a:03}_{}", d + 1));
            builder = builder.edge(format!("DIM{a}_{d}"), names.iter().map(String::as_str));
        }
    }
    builder.build().expect("nonempty edges")
}

/// A fixed order-management schema in the spirit of TPC benchmarks:
/// region–nation–customer–orders–lineitem–part/supplier.  Eight relations,
/// acyclic, with realistic key sharing.
pub fn tpc_like() -> Hypergraph {
    Hypergraph::builder()
        .edge("REGION", ["regionkey", "r_name"])
        .edge("NATION", ["nationkey", "regionkey", "n_name"])
        .edge("CUSTOMER", ["custkey", "nationkey", "c_name", "acctbal"])
        .edge("ORDERS", ["orderkey", "custkey", "orderdate", "totalprice"])
        .edge(
            "LINEITEM",
            ["orderkey", "partkey", "suppkey", "quantity", "price"],
        )
        .edge("PARTSUPP", ["partkey", "suppkey", "supplycost"])
        .edge("PART", ["partkey", "p_name", "brand"])
        .edge("SUPPLIER", ["suppkey", "s_name", "s_nationkey"])
        .build()
        .expect("static schema")
}

/// Adds a "shortcut" edge connecting the first node of the first edge with
/// the last node of the last edge *and nothing else*, which creates a cycle
/// in any connected schema with at least two edges whose reduction does not
/// already cover that pair.
pub fn with_cycle(h: &Hypergraph) -> Hypergraph {
    let first_edge = &h.edges()[0].nodes;
    let last_edge = &h.edges()[h.edge_count() - 1].nodes;
    let a = first_edge.iter().next().expect("nonempty edge");
    let b = last_edge.iter().last().expect("nonempty edge");
    let universe = h.universe();
    let mut builder = HypergraphBuilder::new();
    for e in h.edges() {
        let names: Vec<&str> = e.nodes.iter().map(|n| universe.name(n)).collect();
        builder = builder.edge(e.label.clone(), names);
    }
    builder = builder.edge("SHORTCUT", [universe.name(a), universe.name(b)]);
    builder.build().expect("nonempty edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic_gen::{chain, star};
    use acyclic::AcyclicityExt;

    #[test]
    fn snowflake_is_acyclic_and_sized() {
        let h = snowflake(3, 2, 3);
        assert_eq!(h.edge_count(), 1 + 3 * 2);
        assert!(h.is_acyclic());
        assert!(h.is_connected());
    }

    #[test]
    fn tpc_like_is_acyclic() {
        let h = tpc_like();
        assert_eq!(h.edge_count(), 8);
        assert!(h.is_acyclic());
        assert!(h.is_connected());
        assert!(h.is_reduced());
    }

    #[test]
    fn with_cycle_makes_schemas_cyclic() {
        for base in [chain(6, 3, 1), star(5, 3), snowflake(2, 2, 3), tpc_like()] {
            assert!(base.is_acyclic());
            let cyclic = with_cycle(&base);
            assert_eq!(cyclic.edge_count(), base.edge_count() + 1);
            assert!(
                !cyclic.is_acyclic(),
                "shortcut failed to create a cycle in {}",
                base.display()
            );
        }
    }
}
