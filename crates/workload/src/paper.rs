//! The paper's figures and worked examples as reusable fixtures.
//!
//! Every figure of the paper that is fully specified in the text is exposed
//! as a constructor, together with the sacred sets and expected results its
//! examples use, so tests, examples and benchmarks all reproduce the same
//! artifacts (experiment ids E1–E7 in DESIGN.md).

use hypergraph::{Hypergraph, NodeSet};

/// Fig. 1: the acyclic hypergraph with edges {A,B,C}, {C,D,E}, {A,E,F} and
/// {A,C,E}.
pub fn fig1() -> Hypergraph {
    Hypergraph::from_edges([
        vec!["A", "B", "C"],
        vec!["C", "D", "E"],
        vec!["A", "E", "F"],
        vec!["A", "C", "E"],
    ])
    .expect("static fixture")
}

/// The sacred set `X = {A, D}` used by Examples 2.2, 3.1 and 3.3.
pub fn fig1_sacred_ad(h: &Hypergraph) -> NodeSet {
    h.node_set(["A", "D"]).expect("A and D are nodes of Fig. 1")
}

/// The expected `GR(H, {A, D}) = TR(H, {A, D})`: partial edges {A,C,E} and
/// {C,D,E} (Examples 2.2 and 3.3).
pub fn fig1_expected_reduction(h: &Hypergraph) -> Vec<NodeSet> {
    vec![
        h.node_set(["A", "C", "E"]).expect("fixture"),
        h.node_set(["C", "D", "E"]).expect("fixture"),
    ]
}

/// The hypergraph of Example 5.1: Fig. 1 with the edge {A,C,E} removed.
/// It is a ring of three edges and is cyclic.
pub fn fig1_ring() -> Hypergraph {
    Hypergraph::from_edges([
        vec!["A", "B", "C"],
        vec!["C", "D", "E"],
        vec!["A", "E", "F"],
    ])
    .expect("static fixture")
}

/// The cyclic counterexample given after Theorem 3.5: edges {A,B}, {A,C},
/// {B,C} and {A,D}, with `X = {D}` sacred.  Tableau reduction keeps only the
/// node D while Graham reduction keeps all four edges.
pub fn counterexample_after_theorem_3_5() -> (Hypergraph, NodeSet) {
    let h = Hypergraph::from_edges([
        vec!["A", "B"],
        vec!["A", "C"],
        vec!["B", "C"],
        vec!["A", "D"],
    ])
    .expect("static fixture");
    let x = h.node_set(["D"]).expect("fixture");
    (h, x)
}

/// A Fig.-5-style acyclic hypergraph with two "apparent" routes between A
/// and F (the exact edge set of Fig. 5 is not recoverable from the text;
/// this fixture preserves its point: either middle edge can be eliminated,
/// yet no independent path exists).
pub fn fig5_like() -> Hypergraph {
    Hypergraph::from_edges([
        vec!["A", "B"],
        vec!["B", "C", "F"],
        vec!["B", "D", "F"],
        vec!["B", "C", "D", "F"],
    ])
    .expect("static fixture")
}

/// The independent tree of Fig. 6 / Example 5.1 over [`fig1_ring`]: node
/// sets {A}, {E}, {C} with {E} in the middle.
pub fn fig6_tree_sets(h: &Hypergraph) -> Vec<NodeSet> {
    vec![
        h.node_set(["A"]).expect("fixture"),
        h.node_set(["E"]).expect("fixture"),
        h.node_set(["C"]).expect("fixture"),
    ]
}

/// All named paper fixtures, for exhaustive sweeps in tests and benches.
pub fn all_fixtures() -> Vec<(&'static str, Hypergraph)> {
    let (counterexample, _) = counterexample_after_theorem_3_5();
    vec![
        ("fig1", fig1()),
        ("fig1_ring", fig1_ring()),
        ("counterexample_3_5", counterexample),
        ("fig5_like", fig5_like()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use acyclic::AcyclicityExt;

    #[test]
    fn fixtures_have_expected_cyclicity() {
        assert!(fig1().is_acyclic());
        assert!(!fig1_ring().is_acyclic());
        assert!(!counterexample_after_theorem_3_5().0.is_acyclic());
        assert!(fig5_like().is_acyclic());
    }

    #[test]
    fn fixture_accessors_are_consistent() {
        let h = fig1();
        assert_eq!(fig1_sacred_ad(&h).len(), 2);
        assert_eq!(fig1_expected_reduction(&h).len(), 2);
        assert_eq!(fig6_tree_sets(&fig1_ring()).len(), 3);
        assert_eq!(all_fixtures().len(), 4);
    }
}
