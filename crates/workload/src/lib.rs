//! Workload generators and paper fixtures for the "Connections in Acyclic
//! Hypergraphs" reproduction.
//!
//! * [`paper`] — the paper's figures and worked examples as fixtures
//!   (Fig. 1, the Example 5.1 ring, the Theorem 3.5 counterexample, …).
//! * [`acyclic_gen`] — random acyclic hypergraphs (built from random join
//!   trees) plus the chain and star schema shapes.
//! * [`cyclic_gen`] — rings, hyper-rings, pair-cliques, grids and uniformly
//!   random hypergraphs.
//! * [`schema_gen`] — snowflake and TPC-style schemas and the
//!   [`schema_gen::with_cycle`] transformation that produces matched
//!   acyclic/cyclic pairs.
//! * [`data_gen`] — random, globally consistent, and pairwise-consistent-
//!   but-globally-inconsistent database instances.
//!
//! Everything is deterministic per seed, so benchmark tables and property
//! tests are reproducible.
//!
//! The generators map to the paper's objects as follows: acyclic schemas
//! (chains, stars, fanout snowflake trees, random join-tree-derived
//! hypergraphs) always admit the join trees of §4; the cyclic generators
//! produce the independent-path certificates of §5–6; the data generators
//! populate §7's universal-relation databases, including the pairwise-
//! consistent-but-globally-inconsistent rings that separate the two
//! consistency notions, and Zipf-skewed instances for the join-strategy
//! cost model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclic_gen;
pub mod cyclic_gen;
pub mod data_gen;
pub mod paper;
pub mod schema_gen;

pub use acyclic_gen::{chain, random_acyclic, star, AcyclicParams};
pub use cyclic_gen::{grid, hyper_ring, pair_clique, random_hypergraph, ring, RandomParams};
pub use data_gen::{
    consistent_database, far_apart, inconsistent_ring_database, random_database, DataParams,
};
pub use schema_gen::{snowflake, snowflake_tree, tpc_like, with_cycle};
