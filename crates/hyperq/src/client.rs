//! The `hyperq client` subcommand: a protocol client for `hyperqd`.
//!
//! Speaks one request per invocation over TCP — the same line-oriented
//! JSON frames defined in [`hyperqd::protocol`] — and maps server error
//! responses onto the CLI exit-code contract (`kind.code()`: 3 deadline or
//! cancelled, 4 budget, 5 engine panic, 2 everything else), so shell
//! scripts and the CI `server` job can assert on `$?` exactly as they do
//! for one-shot `hyperq query`.
//!
//! Beyond the one-shot ops, `client stats` scrapes the server's telemetry
//! registry (canonical JSON, or the Prometheus text exposition with
//! `--prometheus`), and `client bench` drives N concurrent client threads
//! against a served database, brackets the run with two stats scrapes, and
//! reports the *server-side* latency quantiles of exactly the bracketed
//! window by diffing the two mergeable histograms — rows that land in
//! `BENCH_results.json` under the same regression guard as the engine
//! benchmarks.

use crate::bench::BenchRecord;
use crate::commands::CliError;
use hyperqd::json::Json;
use hyperqd::protocol::{
    parse_response, render_request, EngineKind, Overrides, QuerySpec, Request, Response,
    StrategyKind, MAX_LINE,
};
use hyperqd::stats::Histogram;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Runs `hyperq client <addr> <op> ...`.  `args` holds everything after
/// the `client` word; flags are extracted in place, positionals remain.
pub fn run_client(args: &mut Vec<String>) -> Result<String, CliError> {
    let raw = crate::take_switch(args, "--raw");
    if args.len() < 2 {
        return Err("client expects <addr> and an operation \
                    (ping | list | stats | query | prepare | run | bench | shutdown)"
            .into());
    }
    let addr = args.remove(0);
    let op = args.remove(0);
    let request = match op.as_str() {
        "ping" => Request::Ping,
        "list" => Request::List,
        "stats" => Request::Stats {
            prometheus: crate::take_switch(args, "--prometheus"),
        },
        "bench" => {
            if raw {
                return Err("client bench does not support --raw".into());
            }
            return run_bench(&addr, args);
        }
        "shutdown" => Request::Shutdown {
            now: crate::take_switch(args, "--now"),
        },
        "query" => {
            let overrides = take_overrides(args)?;
            let engine = take_engine(args)?;
            let select = take_select(args)?;
            let [db] = args.as_slice() else {
                return Err("client query expects exactly one <db> name".into());
            };
            let db = db.clone();
            args.truncate(0);
            Request::Query(QuerySpec {
                db,
                select,
                engine,
                overrides,
            })
        }
        "prepare" => {
            let overrides = take_overrides(args)?;
            let engine = take_engine(args)?;
            let select = take_select(args)?;
            let [name, db] = args.as_slice() else {
                return Err("client prepare expects <name> and <db>".into());
            };
            let (name, db) = (name.clone(), db.clone());
            args.truncate(0);
            Request::Prepare {
                name,
                spec: QuerySpec {
                    db,
                    select,
                    engine,
                    overrides,
                },
            }
        }
        "run" => {
            let overrides = take_overrides(args)?;
            let [name] = args.as_slice() else {
                return Err("client run expects exactly one prepared-query <name>".into());
            };
            let name = name.clone();
            args.truncate(0);
            Request::Run { name, overrides }
        }
        other => return Err(format!("unknown client operation {other:?}").into()),
    };
    if !args.is_empty() {
        return Err(format!("client {op}: unexpected arguments {args:?}").into());
    }
    let line = exchange(&addr, &render_request(&request))?;
    if raw {
        return Ok(format!("{line}\n"));
    }
    let response = parse_response(&line)
        .map_err(|e| CliError::from(format!("{addr}: unparseable response ({e}): {line}")))?;
    render(&addr, response)
}

/// One request/response exchange: connect, send the frame, read one line.
fn exchange(addr: &str, request_line: &str) -> Result<String, CliError> {
    let io_err = |what: &str, e: std::io::Error| CliError::from(format!("{addr}: {what}: {e}"));
    let mut stream = TcpStream::connect(addr).map_err(|e| io_err("cannot connect", e))?;
    stream
        .write_all(request_line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| io_err("cannot send request", e))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Cap the read at the protocol frame limit: a server bug cannot make
    // the client buffer without bound.
    reader
        .by_ref()
        .take(MAX_LINE as u64)
        .read_line(&mut line)
        .map_err(|e| io_err("cannot read response", e))?;
    if line.is_empty() {
        return Err(format!("{addr}: server closed the connection without a response").into());
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Renders a parsed response for the terminal; server errors become
/// [`CliError`]s carrying the protocol's exit code.
fn render(addr: &str, response: Response) -> Result<String, CliError> {
    match response {
        Response::Pong => Ok("pong\n".to_owned()),
        Response::Bye => Ok("bye\n".to_owned()),
        Response::Prepared { name } => Ok(format!("prepared {name}\n")),
        Response::Listing { databases, queries } => {
            let mut out = String::new();
            for d in &databases {
                out.push_str(&format!(
                    "database {}: {} relations, {} tuples, {}\n",
                    d.name,
                    d.relations,
                    d.tuples,
                    if d.acyclic { "acyclic" } else { "cyclic" }
                ));
            }
            for q in &queries {
                out.push_str(&format!("prepared {q}\n"));
            }
            if out.is_empty() {
                out.push_str("(nothing served)\n");
            }
            Ok(out)
        }
        Response::Answer {
            attrs,
            rows,
            metrics,
            trace,
        } => {
            let mut out = String::new();
            out.push_str(&attrs.join(" | "));
            out.push('\n');
            for row in &rows {
                let cells: Vec<String> = row.iter().map(cell).collect();
                out.push_str(&cells.join(" | "));
                out.push('\n');
            }
            out.push_str(&format!("({} tuples)\n", rows.len()));
            if let Some(m) = metrics {
                out.push_str(&format!("metrics: {m}\n"));
            }
            if let Some(t) = trace {
                out.push_str(&format!("trace: {t}\n"));
            }
            Ok(out)
        }
        Response::Stats { stats, text } => {
            // Exactly one side is populated (the protocol parser enforces
            // it); the Prometheus exposition is already newline-terminated.
            match (stats, text) {
                (Some(s), _) => Ok(format!("{s}\n")),
                (None, Some(t)) => Ok(t),
                (None, None) => Err(format!("{addr}: empty stats response").into()),
            }
        }
        Response::Error(e) => Err(CliError {
            code: e.kind.code(),
            message: format!("{addr}: server error: {e}"),
        }),
    }
}

/// Runs `hyperq client <addr> bench <db> --select ...`: `--clients`
/// threads each issue `--requests` ad-hoc queries, and the server's own
/// latency histogram — scraped via the `stats` op before and after, then
/// diffed — yields the p50/p90/p99 of exactly the bracketed window.
/// `--out` merges the quantile rows into a `BENCH_results.json` document
/// (replacing rows with the same identity); `--check` compares them
/// against a baseline under `--max-regression`.
fn run_bench(addr: &str, args: &mut Vec<String>) -> Result<String, CliError> {
    let mut parse_count = |flag: &str, default: usize| -> Result<usize, CliError> {
        match crate::take_flag(args, flag)? {
            None => Ok(default),
            Some(s) => match s.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("{flag}: expected a positive count, got {s:?}").into()),
            },
        }
    };
    let clients = parse_count("--clients", 4)?;
    let requests = parse_count("--requests", 25)?;
    let out_path = crate::take_flag(args, "--out")?;
    let check_path = crate::take_flag(args, "--check")?;
    let max_regression = match crate::take_flag(args, "--max-regression")? {
        Some(s) => s
            .parse::<f64>()
            .map_err(|_| format!("--max-regression: not a number: {s:?}"))?,
        None => 2.0,
    };
    let overrides = take_overrides(args)?;
    let engine = take_engine(args)?;
    let select = take_select(args)?;
    let [db] = args.as_slice() else {
        return Err("client bench expects exactly one <db> name".into());
    };
    let db = db.clone();
    args.truncate(0);
    let request_line = render_request(&Request::Query(QuerySpec {
        db: db.clone(),
        select,
        engine,
        overrides,
    }));

    let before = scrape_latency(addr)?;
    let mut handles = Vec::new();
    for _ in 0..clients {
        let addr = addr.to_owned();
        let line = request_line.clone();
        handles.push(std::thread::spawn(move || -> Result<(), CliError> {
            for _ in 0..requests {
                let response_line = exchange(&addr, &line)?;
                match parse_response(&response_line) {
                    Ok(Response::Error(e)) => {
                        return Err(CliError {
                            code: e.kind.code(),
                            message: format!("{addr}: server error: {e}"),
                        })
                    }
                    Ok(_) => {}
                    Err(e) => {
                        return Err(
                            format!("{addr}: unparseable response ({e}): {response_line}").into(),
                        )
                    }
                }
            }
            Ok(())
        }));
    }
    for handle in handles {
        handle
            .join()
            .map_err(|_| CliError::from("bench client thread panicked".to_owned()))??;
    }
    let after = scrape_latency(addr)?;

    let window = after.diff(&before);
    let issued = (clients * requests) as u64;
    if window.count() < issued {
        return Err(format!(
            "server histogram grew by {} queries but the bench issued {issued}",
            window.count()
        )
        .into());
    }
    let quantiles = [
        ("server_query_p50", window.quantile(0.50)),
        ("server_query_p90", window.quantile(0.90)),
        ("server_query_p99", window.quantile(0.99)),
    ];
    let records: Vec<BenchRecord> = quantiles
        .iter()
        .map(|&(op, us)| BenchRecord {
            op: op.to_owned(),
            engine: "server".to_owned(),
            workload: db.clone(),
            size: issued as usize,
            units: window.count() as usize,
            iters: window.count() as usize,
            ns_per_iter: us as f64 * 1000.0,
            metrics: None,
        })
        .collect();

    let mut out = format!(
        "server latency over {} queries ({clients} clients x {requests} requests, db {db}):\n",
        window.count()
    );
    for &(op, us) in &quantiles {
        out.push_str(&format!("  {}: {us} us\n", &op["server_query_".len()..]));
    }
    out.push_str(&format!("  max (since server start): {} us\n", after.max()));
    if let Some(path) = out_path {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        let merged = crate::bench::merge_json(&existing, &records);
        std::fs::write(&path, merged).map_err(|e| format!("cannot write {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if let Some(path) = check_path {
        let baseline =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        out.push_str(&crate::bench::check_baseline(
            &records,
            &baseline,
            max_regression,
        )?);
    }
    Ok(out)
}

/// Scrapes the server's latency histogram: one `stats` exchange, then the
/// sparse `latency_us.buckets` pairs rebuilt into a mergeable
/// [`Histogram`] (the wire form exists exactly so two scrapes can be
/// diffed client-side).
fn scrape_latency(addr: &str) -> Result<Histogram, CliError> {
    let line = exchange(addr, &render_request(&Request::Stats { prometheus: false }))?;
    let response = parse_response(&line)
        .map_err(|e| CliError::from(format!("{addr}: unparseable stats response ({e}): {line}")))?;
    let stats = match response {
        Response::Stats {
            stats: Some(stats), ..
        } => stats,
        Response::Error(e) => {
            return Err(CliError {
                code: e.kind.code(),
                message: format!("{addr}: server error: {e}"),
            })
        }
        _ => return Err(format!("{addr}: expected a stats frame, got {line}").into()),
    };
    let malformed = || CliError::from(format!("{addr}: malformed latency_us in stats frame"));
    let latency = stats.get("latency_us").ok_or_else(malformed)?;
    let max = latency
        .get("max")
        .and_then(Json::as_u64)
        .ok_or_else(malformed)?;
    let pairs: Vec<(usize, u64)> = latency
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(malformed)?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            match pair {
                [idx, count] => Some((idx.as_u64()? as usize, count.as_u64()?)),
                _ => None,
            }
        })
        .collect::<Option<_>>()
        .ok_or_else(malformed)?;
    Histogram::from_sparse(&pairs, max).ok_or_else(malformed)
}

/// A row cell for display: strings bare (matching the CLI's relation
/// printer), everything else in JSON form.
fn cell(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

fn take_select(args: &mut Vec<String>) -> Result<Vec<String>, CliError> {
    let select = crate::take_flag(args, "--select")?.ok_or("client requires --select A,B[,..]")?;
    let attrs: Vec<String> = select
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if attrs.is_empty() {
        return Err("--select needs at least one attribute".into());
    }
    Ok(attrs)
}

fn take_engine(args: &mut Vec<String>) -> Result<Option<EngineKind>, CliError> {
    Ok(match crate::take_flag(args, "--engine")?.as_deref() {
        None => None,
        Some("yannakakis") => Some(EngineKind::Yannakakis),
        Some("connection") => Some(EngineKind::Connection),
        Some("naive") => Some(EngineKind::Naive),
        Some(other) => return Err(format!("unknown engine {other:?}").into()),
    })
}

/// Extracts the shared override flags (`--strategy`, `--threads`,
/// `--timeout-ms`, `--mem-budget-mb`, `--metrics`, and the
/// failpoints-feature fault-injection pair).
fn take_overrides(args: &mut Vec<String>) -> Result<Overrides, CliError> {
    let strategy = match crate::take_flag(args, "--strategy")?.as_deref() {
        None => None,
        Some("hash") => Some(StrategyKind::Hash),
        Some("sort-merge") => Some(StrategyKind::SortMerge),
        Some("auto") => Some(StrategyKind::Auto),
        Some(other) => return Err(format!("unknown strategy {other:?}").into()),
    };
    let mut o = Overrides {
        strategy,
        ..Overrides::default()
    };
    for (flag, slot) in [
        ("--threads", &mut o.threads),
        ("--timeout-ms", &mut o.timeout_ms),
        ("--mem-budget-mb", &mut o.mem_budget_mb),
        ("--fail-at-semijoin", &mut o.fail_at_semijoin),
    ] {
        if let Some(s) = crate::take_flag(args, flag)? {
            *slot = Some(
                s.parse::<u64>()
                    .map_err(|_| format!("{flag}: expected a non-negative integer, got {s:?}"))?,
            );
        }
    }
    if crate::take_switch(args, "--metrics") {
        o.metrics = Some(true);
    }
    if crate::take_switch(args, "--fail-panic") {
        o.fail_panic = Some(true);
    }
    Ok(o)
}
