//! The `hyperq client` subcommand: a protocol client for `hyperqd`.
//!
//! Speaks one request per invocation over TCP — the same line-oriented
//! JSON frames defined in [`hyperqd::protocol`] — and maps server error
//! responses onto the CLI exit-code contract (`kind.code()`: 3 deadline or
//! cancelled, 4 budget, 5 engine panic, 2 everything else), so shell
//! scripts and the CI `server` job can assert on `$?` exactly as they do
//! for one-shot `hyperq query`.

use crate::commands::CliError;
use hyperqd::json::Json;
use hyperqd::protocol::{
    parse_response, render_request, EngineKind, Overrides, QuerySpec, Request, Response,
    StrategyKind, MAX_LINE,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Runs `hyperq client <addr> <op> ...`.  `args` holds everything after
/// the `client` word; flags are extracted in place, positionals remain.
pub fn run_client(args: &mut Vec<String>) -> Result<String, CliError> {
    let raw = crate::take_switch(args, "--raw");
    if args.len() < 2 {
        return Err("client expects <addr> and an operation \
                    (ping | list | query | prepare | run | shutdown)"
            .into());
    }
    let addr = args.remove(0);
    let op = args.remove(0);
    let request = match op.as_str() {
        "ping" => Request::Ping,
        "list" => Request::List,
        "shutdown" => Request::Shutdown {
            now: crate::take_switch(args, "--now"),
        },
        "query" => {
            let overrides = take_overrides(args)?;
            let engine = take_engine(args)?;
            let select = take_select(args)?;
            let [db] = args.as_slice() else {
                return Err("client query expects exactly one <db> name".into());
            };
            let db = db.clone();
            args.truncate(0);
            Request::Query(QuerySpec {
                db,
                select,
                engine,
                overrides,
            })
        }
        "prepare" => {
            let overrides = take_overrides(args)?;
            let engine = take_engine(args)?;
            let select = take_select(args)?;
            let [name, db] = args.as_slice() else {
                return Err("client prepare expects <name> and <db>".into());
            };
            let (name, db) = (name.clone(), db.clone());
            args.truncate(0);
            Request::Prepare {
                name,
                spec: QuerySpec {
                    db,
                    select,
                    engine,
                    overrides,
                },
            }
        }
        "run" => {
            let overrides = take_overrides(args)?;
            let [name] = args.as_slice() else {
                return Err("client run expects exactly one prepared-query <name>".into());
            };
            let name = name.clone();
            args.truncate(0);
            Request::Run { name, overrides }
        }
        other => return Err(format!("unknown client operation {other:?}").into()),
    };
    if !args.is_empty() {
        return Err(format!("client {op}: unexpected arguments {args:?}").into());
    }
    let line = exchange(&addr, &render_request(&request))?;
    if raw {
        return Ok(format!("{line}\n"));
    }
    let response = parse_response(&line)
        .map_err(|e| CliError::from(format!("{addr}: unparseable response ({e}): {line}")))?;
    render(&addr, response)
}

/// One request/response exchange: connect, send the frame, read one line.
fn exchange(addr: &str, request_line: &str) -> Result<String, CliError> {
    let io_err = |what: &str, e: std::io::Error| CliError::from(format!("{addr}: {what}: {e}"));
    let mut stream = TcpStream::connect(addr).map_err(|e| io_err("cannot connect", e))?;
    stream
        .write_all(request_line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| io_err("cannot send request", e))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Cap the read at the protocol frame limit: a server bug cannot make
    // the client buffer without bound.
    reader
        .by_ref()
        .take(MAX_LINE as u64)
        .read_line(&mut line)
        .map_err(|e| io_err("cannot read response", e))?;
    if line.is_empty() {
        return Err(format!("{addr}: server closed the connection without a response").into());
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Renders a parsed response for the terminal; server errors become
/// [`CliError`]s carrying the protocol's exit code.
fn render(addr: &str, response: Response) -> Result<String, CliError> {
    match response {
        Response::Pong => Ok("pong\n".to_owned()),
        Response::Bye => Ok("bye\n".to_owned()),
        Response::Prepared { name } => Ok(format!("prepared {name}\n")),
        Response::Listing { databases, queries } => {
            let mut out = String::new();
            for d in &databases {
                out.push_str(&format!(
                    "database {}: {} relations, {} tuples, {}\n",
                    d.name,
                    d.relations,
                    d.tuples,
                    if d.acyclic { "acyclic" } else { "cyclic" }
                ));
            }
            for q in &queries {
                out.push_str(&format!("prepared {q}\n"));
            }
            if out.is_empty() {
                out.push_str("(nothing served)\n");
            }
            Ok(out)
        }
        Response::Answer {
            attrs,
            rows,
            metrics,
        } => {
            let mut out = String::new();
            out.push_str(&attrs.join(" | "));
            out.push('\n');
            for row in &rows {
                let cells: Vec<String> = row.iter().map(cell).collect();
                out.push_str(&cells.join(" | "));
                out.push('\n');
            }
            out.push_str(&format!("({} tuples)\n", rows.len()));
            if let Some(m) = metrics {
                out.push_str(&format!("metrics: {m}\n"));
            }
            Ok(out)
        }
        Response::Error(e) => Err(CliError {
            code: e.kind.code(),
            message: format!("{addr}: server error: {e}"),
        }),
    }
}

/// A row cell for display: strings bare (matching the CLI's relation
/// printer), everything else in JSON form.
fn cell(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

fn take_select(args: &mut Vec<String>) -> Result<Vec<String>, CliError> {
    let select = crate::take_flag(args, "--select")?.ok_or("client requires --select A,B[,..]")?;
    let attrs: Vec<String> = select
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if attrs.is_empty() {
        return Err("--select needs at least one attribute".into());
    }
    Ok(attrs)
}

fn take_engine(args: &mut Vec<String>) -> Result<Option<EngineKind>, CliError> {
    Ok(match crate::take_flag(args, "--engine")?.as_deref() {
        None => None,
        Some("yannakakis") => Some(EngineKind::Yannakakis),
        Some("connection") => Some(EngineKind::Connection),
        Some("naive") => Some(EngineKind::Naive),
        Some(other) => return Err(format!("unknown engine {other:?}").into()),
    })
}

/// Extracts the shared override flags (`--strategy`, `--threads`,
/// `--timeout-ms`, `--mem-budget-mb`, `--metrics`, and the
/// failpoints-feature fault-injection pair).
fn take_overrides(args: &mut Vec<String>) -> Result<Overrides, CliError> {
    let strategy = match crate::take_flag(args, "--strategy")?.as_deref() {
        None => None,
        Some("hash") => Some(StrategyKind::Hash),
        Some("sort-merge") => Some(StrategyKind::SortMerge),
        Some("auto") => Some(StrategyKind::Auto),
        Some(other) => return Err(format!("unknown strategy {other:?}").into()),
    };
    let mut o = Overrides {
        strategy,
        ..Overrides::default()
    };
    for (flag, slot) in [
        ("--threads", &mut o.threads),
        ("--timeout-ms", &mut o.timeout_ms),
        ("--mem-budget-mb", &mut o.mem_budget_mb),
        ("--fail-at-semijoin", &mut o.fail_at_semijoin),
    ] {
        if let Some(s) = crate::take_flag(args, flag)? {
            *slot = Some(
                s.parse::<u64>()
                    .map_err(|_| format!("{flag}: expected a non-negative integer, got {s:?}"))?,
            );
        }
    }
    if crate::take_switch(args, "--metrics") {
        o.metrics = Some(true);
    }
    if crate::take_switch(args, "--fail-panic") {
        o.fail_panic = Some(true);
    }
    Ok(o)
}
