//! `hyperq bench` — the machine-readable perf harness.
//!
//! Runs the query-engine (B4: Yannakakis full reduce + join) and
//! acyclicity micro-benchmarks at fixed workload sizes, timing both the
//! columnar engine and the retained naive reference engine, and writes the
//! results as `BENCH_results.json` so the perf trajectory accumulates in
//! CI artifacts.  The full profile (and `--scale` alone) adds the
//! 10⁶-tuple-per-relation scale rows: `data_load` (binary snapshot decode
//! vs text parse — the ≥20× load-speedup acceptance row) and the
//! sequential vs morsel-driven engines on the same workload.  With
//! `--check <baseline.json>` it additionally compares the measured
//! columnar `full_reduce` and `yannakakis_join` numbers (the sequential,
//! pool-leased parallel and morsel engines), the `cyclic_join`
//! decomposition rows and the `data_load` rows against a checked-in
//! baseline and fails on a regression beyond `--max-regression` (default
//! 2×, deliberately generous to tolerate runner noise).

use acyclic::{is_acyclic_mcs, join_tree, AcyclicityExt};
use decomp::{decompose, Heuristic};
use hypergraph::EdgeId;
use hypergraph::Hypergraph;
use reldb::reference::{naive_full_reduce, naive_yannakakis_join};
use reldb::{
    full_reduce_governed, full_reduce_metered, full_reduce_with, naive_join_project,
    yannakakis_join_any, yannakakis_join_any_metered, yannakakis_join_governed,
    yannakakis_join_metered, yannakakis_join_with, CollectingSink, Database, ExecPolicy,
    JoinStrategy, NoopMetrics, QueryGovernor, Relation, WorkerLease,
    AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO, AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO,
    AUTO_SORTMERGE_MAX_DISTINCT_RATIO,
};
use std::time::Instant;
use workload::{
    chain, far_apart, hyper_ring, pair_clique, random_database, ring, snowflake_tree, star,
    DataParams,
};

/// Engine counters for one benchmark row, captured by running the measured
/// operation once under a [`CollectingSink`] (outside the timed loop, so
/// metering never contaminates the timing).  Rows without a metered path
/// (the naive reference engine, the structural acyclicity/decompose ops)
/// carry none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowMetrics {
    /// Total rows probed across all join/semijoin operations.
    pub probed: u64,
    /// Total rows kept (join output + semijoin survivors).
    pub kept: u64,
    /// Join operations executed.
    pub join_ops: u64,
    /// Semijoin operations executed.
    pub semijoin_ops: u64,
}

impl RowMetrics {
    fn capture(f: impl FnOnce(&CollectingSink)) -> Self {
        let sink = CollectingSink::new();
        f(&sink);
        let m = sink.snapshot();
        Self {
            probed: m.total_probed(),
            kept: m.total_kept(),
            join_ops: m.joins.ops,
            semijoin_ops: m.semijoins.ops,
        }
    }
}

/// One measured data point.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Operation name (`full_reduce`, `yannakakis_join`, `acyclicity_gyo`, …).
    pub op: String,
    /// `columnar` (the engine) or `reference` (the naive baseline).
    pub engine: String,
    /// Workload name (`chain-6`, `star-6`, `chain-64`, …).
    pub workload: String,
    /// Workload scale knob: tuples per relation, or edge count.
    pub size: usize,
    /// Work items processed per iteration: database tuples, or edges.
    pub units: usize,
    /// Timed iterations.
    pub iters: usize,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Engine counters for the row's operation, when it has a metered path.
    pub metrics: Option<RowMetrics>,
}

impl BenchRecord {
    fn units_per_sec(&self) -> f64 {
        if self.ns_per_iter <= 0.0 {
            return 0.0;
        }
        self.units as f64 * 1e9 / self.ns_per_iter
    }

    fn to_json_line(&self) -> String {
        let metrics = self.metrics.map_or(String::new(), |m| {
            format!(
                ", \"probed\": {}, \"kept\": {}, \"join_ops\": {}, \"semijoin_ops\": {}",
                m.probed, m.kept, m.join_ops, m.semijoin_ops
            )
        });
        format!(
            "    {{\"op\": \"{}\", \"engine\": \"{}\", \"workload\": \"{}\", \"size\": {}, \"units\": {}, \"iters\": {}, \"ns_per_iter\": {:.0}, \"units_per_sec\": {:.0}{}}}",
            self.op,
            self.engine,
            self.workload,
            self.size,
            self.units,
            self.iters,
            self.ns_per_iter,
            self.units_per_sec(),
            metrics,
        )
    }
}

/// Times `f`: one warmup/calibration run, then enough iterations to fill
/// roughly 200ms (between 2 and 100), returning `(iters, mean ns/iter)`.
fn measure<T>(mut f: impl FnMut() -> T) -> (usize, f64) {
    let start = Instant::now();
    std::hint::black_box(f());
    let once_ns = start.elapsed().as_nanos().max(1);
    let iters = (200_000_000 / once_ns).clamp(2, 100) as usize;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    (iters, start.elapsed().as_nanos() as f64 / iters as f64)
}

/// Which workload sizes to run: the full trajectory, the trimmed CI set,
/// a smoke-sized profile for tests, or the scale-up rows alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// All sizes (200/1000/4000 tuples per relation), plus the scale rows.
    Full,
    /// CI sizes (200/1000) — fast enough for every push.
    Quick,
    /// Smoke sizes (60) — for the CLI test suite under debug builds.
    Tiny,
    /// Only the 10⁶-tuple scale rows (snapshot-load vs text-parse, and the
    /// morsel-parallel engine) — the CI `scale` job's profile.
    Scale,
}

/// One benchmark schema family: its name, schema, data skew, and which
/// engine rows to measure on it.
struct QueryWorkload {
    name: &'static str,
    schema: Hypergraph,
    /// Zipf skew for the generated data (`0.0` = uniform).
    skew: f64,
    /// Divisor mapping tuples/relation to the value domain: small divisors
    /// mean more distinct keys.
    domain_div: i64,
    /// Per-join-column value cap (`0` = unbounded): the output-bounded
    /// skewed regime that isolates kernel cost from join-output size.
    key_cap: usize,
    /// Measure the naive reference engine (slow; kept for the original
    /// chain/star trajectory rows).
    reference: bool,
    /// Measure the sort-merge and parallel engine variants.
    variants: bool,
}

/// The strategy/parallelism engine variants measured alongside the default
/// columnar hash engine.  The engine label is what lands in the JSON rows.
///
/// `columnar-parallel` leases long-lived workers from the shared
/// `WorkerPool` (the production parallel path); `columnar-parallel-spawn`
/// runs the identical level-synchronous engine but spawns fresh threads per
/// batch — the pair isolates what pool reuse saves in per-level overhead.
///
/// `columnar-auto` runs the Auto planner with its calibrated per-operator
/// crossovers; `columnar-auto-guess` pins both crossovers back to the
/// original one-size-fits-all 0.05 guess — the pair shows what per-operator
/// calibration buys (informational rows, not regression-guarded).
fn engine_policies(threads: usize) -> Vec<(&'static str, ExecPolicy)> {
    vec![
        (
            "columnar-sortmerge",
            ExecPolicy::sequential(JoinStrategy::SortMerge),
        ),
        ("columnar-auto", ExecPolicy::sequential(JoinStrategy::Auto)),
        (
            "columnar-auto-guess",
            ExecPolicy {
                auto_sortmerge_max_distinct_ratio: AUTO_SORTMERGE_MAX_DISTINCT_RATIO,
                auto_semijoin_sortmerge_max_distinct_ratio: AUTO_SORTMERGE_MAX_DISTINCT_RATIO,
                ..ExecPolicy::sequential(JoinStrategy::Auto)
            },
        ),
        (
            "columnar-parallel",
            ExecPolicy::parallel(JoinStrategy::Hash, threads),
        ),
        (
            "columnar-parallel-spawn",
            ExecPolicy {
                reuse_pool: false,
                ..ExecPolicy::parallel(JoinStrategy::Hash, threads)
            },
        ),
    ]
}

fn query_records(profile: Profile, threads: usize, records: &mut Vec<BenchRecord>) {
    let sizes: &[usize] = match profile {
        Profile::Full => &[200, 1000, 4000],
        Profile::Quick => &[200, 1000],
        Profile::Tiny => &[60],
        Profile::Scale => &[],
    };
    let workloads = vec![
        QueryWorkload {
            name: "chain-6",
            schema: chain(6, 2, 1),
            skew: 0.0,
            domain_div: 2,
            key_cap: 0,
            reference: true,
            variants: true,
        },
        QueryWorkload {
            name: "star-6",
            schema: star(6, 2),
            skew: 0.0,
            domain_div: 2,
            key_cap: 0,
            reference: true,
            variants: false,
        },
        QueryWorkload {
            name: "snowflake-2x2",
            schema: snowflake_tree(2, 2, 3),
            skew: 0.0,
            domain_div: 2,
            key_cap: 0,
            reference: false,
            variants: true,
        },
        QueryWorkload {
            name: "chain-6-zipf",
            schema: chain(6, 2, 1),
            skew: 1.1,
            domain_div: 1,
            key_cap: 0,
            reference: false,
            variants: true,
        },
        // The output-bounded skewed regime: same Zipf draw, but join-column
        // values are capped so join outputs stay proportional to the input
        // and the row measures kernel cost, not output materialization.
        QueryWorkload {
            name: "chain-6-zipf-capped",
            schema: chain(6, 2, 1),
            skew: 1.1,
            domain_div: 1,
            key_cap: 8,
            reference: false,
            variants: true,
        },
    ];
    let hash_seq = ExecPolicy::sequential(JoinStrategy::Hash);
    for w in &workloads {
        let tree = join_tree(&w.schema).expect("benchmark schemas are acyclic");
        let x = far_apart(&w.schema);
        for &size in sizes {
            let db: Database = random_database(
                &w.schema,
                DataParams {
                    tuples_per_relation: size,
                    domain: (size as i64 / w.domain_div).max(2),
                    skew: w.skew,
                    key_cap: w.key_cap,
                },
                9,
            );
            let units = db.tuple_count();
            let mut push =
                |op: &str, engine: &str, (iters, ns): (usize, f64), metrics: Option<RowMetrics>| {
                    records.push(BenchRecord {
                        op: op.to_owned(),
                        engine: engine.to_owned(),
                        workload: w.name.to_owned(),
                        size,
                        units,
                        iters,
                        ns_per_iter: ns,
                        metrics,
                    });
                };
            push(
                "full_reduce",
                "columnar",
                measure(|| full_reduce_with(&db, &tree, &hash_seq)),
                Some(RowMetrics::capture(|s| {
                    full_reduce_metered(&db, &tree, &hash_seq, s);
                })),
            );
            push(
                "yannakakis_join",
                "columnar",
                measure(|| yannakakis_join_with(&db, &tree, &x, &hash_seq)),
                Some(RowMetrics::capture(|s| {
                    yannakakis_join_metered(&db, &tree, &x, &hash_seq, s);
                })),
            );
            // The same kernels with Governor checkpoints live but no limit
            // set: these rows hold the governance layer's overhead under
            // the regression guard alongside the ungoverned engine.
            let gov = QueryGovernor::new();
            push(
                "full_reduce",
                "columnar-governed",
                measure(|| {
                    full_reduce_governed(&db, &tree, &hash_seq, &NoopMetrics, &gov)
                        .expect("no limit set")
                }),
                None,
            );
            push(
                "yannakakis_join",
                "columnar-governed",
                measure(|| {
                    yannakakis_join_governed(&db, &tree, &x, &hash_seq, &NoopMetrics, &gov)
                        .expect("no limit set")
                }),
                None,
            );
            if w.reference {
                push(
                    "full_reduce",
                    "reference",
                    measure(|| naive_full_reduce(&db, &tree)),
                    None,
                );
                push(
                    "yannakakis_join",
                    "reference",
                    measure(|| naive_yannakakis_join(&db, &tree, &x)),
                    None,
                );
            }
            if w.variants {
                for (engine, policy) in engine_policies(threads) {
                    push(
                        "full_reduce",
                        engine,
                        measure(|| full_reduce_with(&db, &tree, &policy)),
                        Some(RowMetrics::capture(|s| {
                            full_reduce_metered(&db, &tree, &policy, s);
                        })),
                    );
                    push(
                        "yannakakis_join",
                        engine,
                        measure(|| yannakakis_join_with(&db, &tree, &x, &policy)),
                        Some(RowMetrics::capture(|s| {
                            yannakakis_join_metered(&db, &tree, &x, &policy, s);
                        })),
                    );
                }
                // A single binary join of the schema's first two relations,
                // isolating the strategy difference from the Yannakakis
                // pipeline.  Every bench schema's first two edges share a
                // key; assert it so a future workload cannot silently turn
                // this row into a cross-product measurement.
                let (r0, r1) = (&db.relations()[0], &db.relations()[1]);
                assert!(
                    !r0.attributes().intersection(r1.attributes()).is_empty(),
                    "join_pair workload relations must share a key"
                );
                push(
                    "join_pair",
                    "columnar",
                    measure(|| r0.join_with(r1, JoinStrategy::Hash)),
                    Some(RowMetrics::capture(|s| {
                        r0.join_metered(r1, &ExecPolicy::sequential(JoinStrategy::Hash), s);
                    })),
                );
                push(
                    "join_pair",
                    "columnar-sortmerge",
                    measure(|| r0.join_with(r1, JoinStrategy::SortMerge)),
                    Some(RowMetrics::capture(|s| {
                        r0.join_metered(r1, &ExecPolicy::sequential(JoinStrategy::SortMerge), s);
                    })),
                );
            }
        }
    }
}

/// The cyclic workload family: rings, hyper-rings and pair-cliques have no
/// join tree, so they exercise the full decompose → materialize → reduce →
/// join pipeline (`yannakakis_join_any` routes them through the hypertree
/// path).  The op rows are
///
/// * `decompose` — structural cost only (min-fill triangulation, bag tree);
/// * `cyclic_join` / `columnar-decomp` — the sequential pipeline;
/// * `cyclic_join` / `columnar-decomp-parallel` — bag materialization and
///   both Yannakakis phases on leased pool workers;
/// * `cyclic_join` / `naive` — join-everything-then-project baseline.
fn cyclic_records(profile: Profile, threads: usize, records: &mut Vec<BenchRecord>) {
    let sizes: &[usize] = match profile {
        Profile::Full => &[200, 1000],
        Profile::Quick => &[200],
        Profile::Tiny => &[60],
        Profile::Scale => &[],
    };
    let workloads = [
        ("ring-8", ring(8)),
        ("hyper-ring-5x3", hyper_ring(5, 3)),
        ("clique-5", pair_clique(5)),
    ];
    let seq = ExecPolicy::sequential(JoinStrategy::Hash);
    let par = ExecPolicy::parallel(JoinStrategy::Hash, threads);
    for (name, schema) in workloads {
        assert!(
            join_tree(&schema).is_none(),
            "cyclic bench workloads must be cyclic"
        );
        let x = far_apart(&schema);
        for &size in sizes {
            let db: Database = random_database(
                &schema,
                DataParams {
                    tuples_per_relation: size,
                    domain: (size as i64 / 2).max(2),
                    skew: 0.0,
                    key_cap: 0,
                },
                9,
            );
            let units = db.tuple_count();
            let mut push =
                |op: &str, engine: &str, (iters, ns): (usize, f64), metrics: Option<RowMetrics>| {
                    records.push(BenchRecord {
                        op: op.to_owned(),
                        engine: engine.to_owned(),
                        workload: name.to_owned(),
                        size,
                        units,
                        iters,
                        ns_per_iter: ns,
                        metrics,
                    });
                };
            push(
                "decompose",
                "columnar",
                measure(|| decompose(&schema, Heuristic::MinFill).expect("nonempty schema")),
                None,
            );
            push(
                "cyclic_join",
                "columnar-decomp",
                measure(|| yannakakis_join_any(&db, &x, &seq).expect("decomposable")),
                Some(RowMetrics::capture(|s| {
                    yannakakis_join_any_metered(&db, &x, &seq, s).expect("decomposable");
                })),
            );
            push(
                "cyclic_join",
                "columnar-decomp-parallel",
                measure(|| yannakakis_join_any(&db, &x, &par).expect("decomposable")),
                Some(RowMetrics::capture(|s| {
                    yannakakis_join_any_metered(&db, &x, &par, s).expect("decomposable");
                })),
            );
            push(
                "cyclic_join",
                "naive",
                measure(|| naive_join_project(&db, &x)),
                None,
            );
        }
    }
}

fn acyclicity_records(profile: Profile, records: &mut Vec<BenchRecord>) {
    let sizes: &[usize] = match profile {
        Profile::Full => &[64, 256],
        Profile::Quick => &[64],
        Profile::Tiny => &[16],
        Profile::Scale => &[],
    };
    for &size in sizes {
        let schema = chain(size, 3, 1);
        let units = schema.edge_count();
        let mut push = |op: &str, (iters, ns): (usize, f64)| {
            records.push(BenchRecord {
                op: op.to_owned(),
                engine: "columnar".to_owned(),
                workload: format!("chain-{size}"),
                size,
                units,
                iters,
                ns_per_iter: ns,
                metrics: None,
            });
        };
        push("acyclicity_gyo", measure(|| schema.is_acyclic()));
        push("acyclicity_mcs", measure(|| is_acyclic_mcs(&schema)));
    }
}

/// The scale workload: the first bench rows at 10⁶ tuples/relation.
///
/// One schema (a 3-relation chain), one size, four kinds of rows:
///
/// * `data_load` / `text-parse` vs `data_load` / `snapshot-load` — parsing
///   the text rendering of the database against decoding its binary
///   snapshot, on byte-identical data (the ≥20× snapshot payoff the
///   format exists for);
/// * `full_reduce` / `yannakakis_join` on the sequential `columnar` engine
///   and on `columnar-morsel` — the pool-leased parallel engine whose
///   probe loops pull [`reldb::MorselQueue`] morsels (at 10⁶ rows a join
///   spans ~61 default-sized morsels, so the work-pull path is exercised
///   for real rather than falling back to sequential).
///
/// The value domain equals the relation size, so each probe key expects
/// about one match and the pipeline stays O(n): the rows measure kernel
/// and load throughput, not join-output materialization.
fn scale_records(threads: usize, records: &mut Vec<BenchRecord>) {
    let schema = chain(3, 2, 1);
    let size = 1_000_000;
    let tree = join_tree(&schema).expect("chains are acyclic");
    let x = far_apart(&schema);
    let db: Database = random_database(
        &schema,
        DataParams {
            tuples_per_relation: size,
            domain: size as i64,
            skew: 0.0,
            key_cap: 0,
        },
        9,
    );
    let units = db.tuple_count();
    let mut push =
        |op: &str, engine: &str, (iters, ns): (usize, f64), metrics: Option<RowMetrics>| {
            records.push(BenchRecord {
                op: op.to_owned(),
                engine: engine.to_owned(),
                workload: "scale-chain-3".to_owned(),
                size,
                units,
                iters,
                ns_per_iter: ns,
                metrics,
            });
        };
    let text = crate::load::render_database(&db);
    let bytes = db.to_snapshot_bytes();
    push(
        "data_load",
        "text-parse",
        measure(|| crate::load::parse_database(&schema, &text).expect("rendered text re-parses")),
        None,
    );
    push(
        "data_load",
        "snapshot-load",
        measure(|| Database::from_snapshot_bytes(&bytes).expect("fresh snapshot decodes")),
        None,
    );
    let seq = ExecPolicy::sequential(JoinStrategy::Hash);
    let morsel = ExecPolicy::parallel(JoinStrategy::Hash, threads);
    for (engine, policy) in [("columnar", &seq), ("columnar-morsel", &morsel)] {
        push(
            "full_reduce",
            engine,
            measure(|| full_reduce_with(&db, &tree, policy)),
            Some(RowMetrics::capture(|s| {
                full_reduce_metered(&db, &tree, policy, s);
            })),
        );
        push(
            "yannakakis_join",
            engine,
            measure(|| yannakakis_join_with(&db, &tree, &x, policy)),
            Some(RowMetrics::capture(|s| {
                yannakakis_join_metered(&db, &tree, &x, policy, s);
            })),
        );
    }
}

/// Runs every benchmark, returning the records.  `threads` pins the worker
/// count of the `columnar-parallel` engine rows (CI passes a fixed value so
/// the trajectory is reproducible across runners).  The 10⁶-tuple scale
/// rows run under the [`Profile::Full`] trajectory and alone under
/// [`Profile::Scale`]; the per-push Quick/Tiny profiles skip them.
pub fn run_all(profile: Profile, threads: usize) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    if profile != Profile::Scale {
        query_records(profile, threads, &mut records);
        cyclic_records(profile, threads, &mut records);
        acyclicity_records(profile, &mut records);
    }
    if matches!(profile, Profile::Full | Profile::Scale) {
        scale_records(threads, &mut records);
    }
    records
}

/// Builds the two-relation calibration instance: `R0(A, B)` and `R1(B, C)`
/// with `n` rows each and roughly `n·ratio` distinct values in the shared
/// key column `B`.  Keys are drawn from a fixed-seed LCG rather than
/// assigned cyclically — a periodic pattern aliases with the engine's
/// evenly-strided ratio sampler and would make the sampled ratio lie about
/// the instance.  The non-key columns stay unique per row, so key
/// duplication is the only skew.
fn calibration_pair(n: usize, ratio: f64) -> (Relation, Relation) {
    let schema = hypergraph::Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]])
        .expect("calibration schema");
    let mut db = Database::empty(schema);
    let k = ((n as f64 * ratio).round() as i64).max(2);
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15 ^ (n as u64);
    let mut next_key = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(k)
    };
    for i in 0..n as i64 {
        db.insert_values(EdgeId(0), [i, next_key()]);
        db.insert_values(EdgeId(1), [next_key(), i]);
    }
    let r0 = db.relations()[0].clone();
    let r1 = db.relations()[1].clone();
    (r0, r1)
}

/// The nanoseconds of the best of three [`measure`] calls — the standard
/// minimum-of-repeats noise filter, which matters on shared single-CPU
/// runners where any one timing can absorb a scheduling hiccup.
fn measure_min<T>(mut f: impl FnMut() -> T) -> f64 {
    (0..3)
        .map(|_| measure(&mut f).1)
        .fold(f64::INFINITY, f64::min)
}

/// `hyperq bench --calibrate`: sweeps the two-relation workload of
/// [`calibration_pair`] across distinct-key counts and relation sizes,
/// timing the hash and sort-merge kernels separately for joins and for
/// semijoins (their cost structures differ: a join materializes output rows
/// where a semijoin only flags survivors), and reports the measured
/// crossover next to the shipped [`JoinStrategy::Auto`] defaults.
///
/// The `sampled` column is the engine's own distinct-key-ratio estimate
/// (distinct keys among ≤128 evenly spaced rows, over the sample size) —
/// the quantity the Auto planner actually compares against its threshold,
/// so crossovers are reported in *sampled* units, not in the true `k/n` the
/// sweep dialed in.
pub fn calibrate(profile: Profile) -> String {
    let sizes: &[usize] = match profile {
        Profile::Full | Profile::Scale => &[1000, 4000],
        Profile::Quick => &[1000],
        Profile::Tiny => &[200],
    };
    let ratios = [0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.0];
    let hash_policy = ExecPolicy::sequential(JoinStrategy::Hash);
    let mut out = String::new();
    out.push_str("calibration sweep: R0(A,B) join/semijoin R1(B,C), best-of-3 timings\n");
    out.push_str(&format!(
        "{:<9} {:>6} {:>8} {:>9} {:>12} {:>12}  {}\n",
        "op", "rows", "ratio", "sampled", "hash_ns", "merge_ns", "winner"
    ));
    let mut summaries = Vec::new();
    for op in ["join", "semijoin"] {
        // Per size: the largest sampled ratio where sort-merge won and the
        // smallest where hash won — the crossover lies between them.
        let mut merge_best: Option<f64> = None;
        let mut hash_best: Option<f64> = None;
        for &n in sizes {
            for &r in &ratios {
                let (r0, r1) = calibration_pair(n, r);
                let sink = CollectingSink::new();
                let (hash_ns, merge_ns, sampled) = if op == "join" {
                    r0.join_metered(&r1, &hash_policy, &sink);
                    (
                        measure_min(|| r0.join_with(&r1, JoinStrategy::Hash)),
                        measure_min(|| r0.join_with(&r1, JoinStrategy::SortMerge)),
                        sink.snapshot().joins.ratio_mean(),
                    )
                } else {
                    let mut probe = r0.clone();
                    probe.retain_semijoin_metered(&r1, &hash_policy, &WorkerLease::inline(), &sink);
                    (
                        measure_min(|| r0.semijoin_with(&r1, JoinStrategy::Hash)),
                        measure_min(|| r0.semijoin_with(&r1, JoinStrategy::SortMerge)),
                        sink.snapshot().semijoins.ratio_mean(),
                    )
                };
                let s = sampled.unwrap_or(1.0);
                if merge_ns <= hash_ns {
                    merge_best = Some(merge_best.map_or(s, |m: f64| m.max(s)));
                } else {
                    hash_best = Some(hash_best.map_or(s, |m: f64| m.min(s)));
                }
                out.push_str(&format!(
                    "{:<9} {:>6} {:>8.3} {:>9.4} {:>12.0} {:>12.0}  {}\n",
                    op,
                    n,
                    r,
                    s,
                    hash_ns,
                    merge_ns,
                    if merge_ns <= hash_ns {
                        "sort-merge"
                    } else {
                        "hash"
                    },
                ));
            }
        }
        summaries.push((op, merge_best, hash_best));
    }
    for (op, merge_best, hash_best) in summaries {
        let shipped = if op == "join" {
            AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO
        } else {
            AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO
        };
        let span = match (merge_best, hash_best) {
            (Some(m), Some(h)) => {
                format!("sort-merge won up to sampled {m:.4}, hash from sampled {h:.4}")
            }
            (Some(m), None) => format!("sort-merge won everywhere swept (up to sampled {m:.4})"),
            (None, Some(h)) => format!("hash won everywhere swept (down to sampled {h:.4})"),
            (None, None) => "no cells measured".to_owned(),
        };
        out.push_str(&format!(
            "measured crossover, {op}: {span} (shipped Auto default {shipped}, old guess {AUTO_SORTMERGE_MAX_DISTINCT_RATIO})\n",
        ));
    }
    out
}

/// Renders the records as the `BENCH_results.json` document (one record per
/// line, so the file diffs and greps cleanly).
pub fn to_json(records: &[BenchRecord]) -> String {
    render_document(records.iter().map(BenchRecord::to_json_line).collect())
}

/// Merges new records into an existing `BENCH_results.json` document:
/// existing record lines whose (op, engine, workload, size) identity
/// collides with a new record are replaced, the rest are kept verbatim,
/// and the new rows are appended.  `hyperq client bench --out` uses this
/// so its server-latency rows join the engine rows written by `hyperq
/// bench --out` in one document instead of clobbering them.  An empty or
/// record-free `existing` degenerates to [`to_json`].
pub fn merge_json(existing: &str, records: &[BenchRecord]) -> String {
    let mut lines: Vec<String> = existing
        .lines()
        .filter(|line| {
            field_str(line, "op").is_some()
                && !records.iter().any(|r| {
                    field_str(line, "op") == Some(r.op.as_str())
                        && field_str(line, "engine") == Some(r.engine.as_str())
                        && field_str(line, "workload") == Some(r.workload.as_str())
                        && field_num(line, "size") == Some(r.size as f64)
                })
        })
        .map(|line| line.trim_end_matches(',').to_owned())
        .collect();
    lines.extend(records.iter().map(BenchRecord::to_json_line));
    render_document(lines)
}

fn render_document(lines: Vec<String>) -> String {
    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"created_unix\": {created},\n"));
    out.push_str("  \"results\": [\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Extracts a string field from a single-record JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts a numeric field from a single-record JSON line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..]
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .map_or(line.len(), |i| i + start);
    line[start..end].parse().ok()
}

/// Compares measured columnar `full_reduce` and `yannakakis_join` records
/// against a baseline document (the format written by [`to_json`]).
/// Returns a summary, or an error naming every regression beyond
/// `max_regression`.
pub fn check_baseline(
    records: &[BenchRecord],
    baseline: &str,
    max_regression: f64,
) -> Result<String, String> {
    let mut compared = 0usize;
    let mut failures = Vec::new();
    let mut out = String::new();
    for r in records {
        // Guard the sequential hash engine and the parallel (pool-leased)
        // engine alike, on the reducer, the full join pipeline, *and* the
        // cyclic decomposition pipeline: a regression in any of them is a
        // regression in a production path.  The scale rows join the guard
        // too — the morsel-parallel engine, and both sides of the
        // snapshot-vs-text load shoot-out (a snapshot decoder that slows
        // toward text-parse speed has lost its reason to exist).  So do
        // the server-side latency quantiles measured by `hyperq client
        // bench`: the end-to-end accept → parse → execute → serialize
        // path is the production surface clients actually see.
        let guarded = matches!(
            (r.op.as_str(), r.engine.as_str()),
            (
                "full_reduce" | "yannakakis_join",
                "columnar" | "columnar-parallel" | "columnar-governed" | "columnar-morsel"
            ) | (
                "cyclic_join",
                "columnar-decomp" | "columnar-decomp-parallel"
            ) | ("data_load", "snapshot-load" | "text-parse")
                | (
                    "server_query_p50" | "server_query_p90" | "server_query_p99",
                    "server"
                )
        );
        if !guarded {
            continue;
        }
        let base = baseline.lines().find_map(|line| {
            (field_str(line, "op") == Some(r.op.as_str())
                && field_str(line, "engine") == Some(r.engine.as_str())
                && field_str(line, "workload") == Some(r.workload.as_str())
                && field_num(line, "size") == Some(r.size as f64))
            .then(|| field_num(line, "ns_per_iter"))
            .flatten()
        });
        let Some(base_ns) = base else {
            // A measured record the baseline does not cover must not
            // silently narrow the guard.
            failures.push(format!(
                "{}/{}/{} size {} has no baseline record",
                r.op, r.engine, r.workload, r.size
            ));
            continue;
        };
        compared += 1;
        let ratio = r.ns_per_iter / base_ns;
        out.push_str(&format!(
            "check {}/{}/{} size {}: {:.0} ns vs baseline {:.0} ns ({}{:.2}x)\n",
            r.op,
            r.engine,
            r.workload,
            r.size,
            r.ns_per_iter,
            base_ns,
            if ratio >= 1.0 { "+" } else { "" },
            ratio,
        ));
        if ratio > max_regression {
            failures.push(format!(
                "{}/{}/{} size {} regressed {ratio:.2}x (limit {max_regression:.2}x)",
                r.op, r.engine, r.workload, r.size
            ));
        }
    }
    if compared == 0 {
        return Err(
            "baseline contains no matching columnar full_reduce/yannakakis_join/cyclic_join records"
                .to_owned(),
        );
    }
    if !failures.is_empty() {
        return Err(format!("bench regression: {}", failures.join("; ")));
    }
    out.push_str(&format!(
        "baseline check passed: {compared} records within {max_regression:.2}x\n"
    ));
    Ok(out)
}

/// A human-readable summary table of the records: every engine row, with
/// the speedup over the sequential columnar hash engine where both were
/// measured (reference rows show their slowdown the same way).
pub fn summary(records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:<19} {:<13} {:>6} {:>8} {:>14} {:>12}\n",
        "op", "engine", "workload", "size", "units", "ns_per_iter", "vs_columnar"
    ));
    for r in records {
        let baseline = records.iter().find(|b| {
            b.engine == "columnar" && b.op == r.op && b.workload == r.workload && b.size == r.size
        });
        let vs = match baseline {
            Some(b) if r.engine != "columnar" => format!("{:.2}x", b.ns_per_iter / r.ns_per_iter),
            _ => "-".to_owned(),
        };
        out.push_str(&format!(
            "{:<16} {:<19} {:<13} {:>6} {:>8} {:>14.0} {:>12}\n",
            r.op, r.engine, r.workload, r.size, r.units, r.ns_per_iter, vs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(op: &str, engine: &str, workload: &str, size: usize, ns: f64) -> BenchRecord {
        BenchRecord {
            op: op.into(),
            engine: engine.into(),
            workload: workload.into(),
            size,
            units: 100,
            iters: 3,
            ns_per_iter: ns,
            metrics: None,
        }
    }

    #[test]
    fn json_roundtrips_through_field_extractors() {
        let records = vec![record("full_reduce", "columnar", "chain-6", 200, 12345.0)];
        let json = to_json(&records);
        let line = json.lines().find(|l| l.contains("\"op\"")).unwrap();
        assert_eq!(field_str(line, "op"), Some("full_reduce"));
        assert_eq!(field_str(line, "engine"), Some("columnar"));
        assert_eq!(field_num(line, "size"), Some(200.0));
        assert_eq!(field_num(line, "ns_per_iter"), Some(12345.0));
    }

    #[test]
    fn json_embeds_row_metrics_when_present() {
        let mut r = record("full_reduce", "columnar", "chain-6", 200, 1000.0);
        r.metrics = Some(RowMetrics {
            probed: 500,
            kept: 400,
            join_ops: 0,
            semijoin_ops: 10,
        });
        let json = to_json(&[r]);
        let line = json.lines().find(|l| l.contains("\"op\"")).unwrap();
        assert_eq!(field_num(line, "probed"), Some(500.0));
        assert_eq!(field_num(line, "kept"), Some(400.0));
        assert_eq!(field_num(line, "semijoin_ops"), Some(10.0));
        // Timing fields keep parsing with the metrics appended after them.
        assert_eq!(field_num(line, "ns_per_iter"), Some(1000.0));
        // A metric-less record emits no metrics keys at all.
        let bare = to_json(&[record("full_reduce", "reference", "chain-6", 200, 1.0)]);
        assert!(!bare.contains("probed"), "bare: {bare}");
    }

    #[test]
    fn baseline_check_tolerates_old_format_baselines() {
        // Pre-metrics BENCH_baseline.json records carry no probed/kept/
        // join_ops/semijoin_ops fields; the check only reads the identity
        // and timing fields, so new-format measurements must still compare
        // cleanly against them.
        let old_baseline = to_json(&[record("full_reduce", "columnar", "chain-6", 200, 1000.0)]);
        assert!(!old_baseline.contains("probed"));
        let mut measured = record("full_reduce", "columnar", "chain-6", 200, 1100.0);
        measured.metrics = Some(RowMetrics {
            probed: 123,
            kept: 45,
            join_ops: 6,
            semijoin_ops: 7,
        });
        let report = check_baseline(&[measured], &old_baseline, 2.0).unwrap();
        assert!(
            report.contains("baseline check passed: 1 records"),
            "report: {report}"
        );
    }

    #[test]
    fn engine_policies_include_the_auto_pair() {
        let engines: Vec<&str> = engine_policies(2).into_iter().map(|(e, _)| e).collect();
        assert!(engines.contains(&"columnar-auto"));
        assert!(engines.contains(&"columnar-auto-guess"));
        let policies = engine_policies(2);
        let guess = &policies
            .iter()
            .find(|(e, _)| *e == "columnar-auto-guess")
            .unwrap()
            .1;
        assert!(
            (guess.auto_sortmerge_max_distinct_ratio - AUTO_SORTMERGE_MAX_DISTINCT_RATIO).abs()
                < 1e-12
        );
        assert!(
            (guess.auto_semijoin_sortmerge_max_distinct_ratio - AUTO_SORTMERGE_MAX_DISTINCT_RATIO)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn calibration_sweep_reports_both_operators() {
        let report = calibrate(Profile::Tiny);
        assert!(
            report.contains("measured crossover, join:"),
            "report: {report}"
        );
        assert!(
            report.contains("measured crossover, semijoin:"),
            "report: {report}"
        );
        // The engine's own sampled ratio confirms the sweep's skew knob: at
        // least one row must carry a sampled value, none a placeholder only.
        assert!(report.contains("0.0"), "sampled ratios shown: {report}");
        // Tiny sweeps one size over eight ratios per operator.
        let rows = |op: &str| {
            report
                .lines()
                .filter(|l| l.starts_with(&format!("{op} ")))
                .count()
        };
        assert_eq!(rows("join"), 8, "join rows: {report}");
        assert_eq!(rows("semijoin"), 8, "semijoin rows: {report}");
    }

    #[test]
    fn baseline_check_passes_and_fails_on_ratio() {
        let baseline = to_json(&[record("full_reduce", "columnar", "chain-6", 200, 1000.0)]);
        let ok = vec![record("full_reduce", "columnar", "chain-6", 200, 1500.0)];
        assert!(check_baseline(&ok, &baseline, 2.0).is_ok());
        let slow = vec![record("full_reduce", "columnar", "chain-6", 200, 2500.0)];
        let err = check_baseline(&slow, &baseline, 2.0).unwrap_err();
        assert!(err.contains("regressed"));
        // Records missing from the baseline are an error, not a silent pass.
        let other = vec![record("full_reduce", "columnar", "star-6", 200, 10.0)];
        assert!(check_baseline(&other, &baseline, 2.0).is_err());
    }

    #[test]
    fn summary_pairs_engines() {
        let records = vec![
            record("full_reduce", "columnar", "chain-6", 200, 1000.0),
            record("full_reduce", "reference", "chain-6", 200, 9000.0),
            record("full_reduce", "columnar-parallel", "chain-6", 200, 500.0),
        ];
        let s = summary(&records);
        assert!(s.contains("0.11x"), "reference slowdown shown: {s}");
        assert!(s.contains("2.00x"), "parallel speedup shown: {s}");
    }

    #[test]
    fn baseline_check_covers_parallel_engine() {
        let baseline = to_json(&[
            record("full_reduce", "columnar", "chain-6", 200, 1000.0),
            record("full_reduce", "columnar-parallel", "chain-6", 200, 1000.0),
        ]);
        let ok = vec![
            record("full_reduce", "columnar", "chain-6", 200, 900.0),
            record("full_reduce", "columnar-parallel", "chain-6", 200, 1100.0),
        ];
        assert!(check_baseline(&ok, &baseline, 2.0).is_ok());
        let slow_par = vec![
            record("full_reduce", "columnar", "chain-6", 200, 900.0),
            record("full_reduce", "columnar-parallel", "chain-6", 200, 5000.0),
        ];
        let err = check_baseline(&slow_par, &baseline, 2.0).unwrap_err();
        assert!(err.contains("columnar-parallel"), "err: {err}");
        // A parallel row missing from the baseline is flagged, not skipped.
        let unknown = vec![record(
            "full_reduce",
            "columnar-parallel",
            "star-6",
            200,
            10.0,
        )];
        assert!(check_baseline(&unknown, &baseline, 2.0).is_err());
    }

    #[test]
    fn baseline_check_covers_yannakakis_join() {
        let baseline = to_json(&[
            record("full_reduce", "columnar", "chain-6", 200, 1000.0),
            record("yannakakis_join", "columnar", "chain-6", 200, 1000.0),
            record(
                "yannakakis_join",
                "columnar-parallel",
                "chain-6",
                200,
                1000.0,
            ),
        ]);
        let ok = vec![
            record("full_reduce", "columnar", "chain-6", 200, 900.0),
            record("yannakakis_join", "columnar", "chain-6", 200, 1100.0),
            record(
                "yannakakis_join",
                "columnar-parallel",
                "chain-6",
                200,
                1200.0,
            ),
        ];
        assert!(check_baseline(&ok, &baseline, 2.0).is_ok());
        // A regressed join pipeline trips the guard even when the reducer
        // is fine.
        let slow_join = vec![
            record("full_reduce", "columnar", "chain-6", 200, 900.0),
            record("yannakakis_join", "columnar", "chain-6", 200, 5000.0),
        ];
        let err = check_baseline(&slow_join, &baseline, 2.0).unwrap_err();
        assert!(err.contains("yannakakis_join"), "err: {err}");
        // The spawn-mode comparison rows are informational, not guarded.
        let spawn_only = vec![
            record("full_reduce", "columnar", "chain-6", 200, 900.0),
            record(
                "yannakakis_join",
                "columnar-parallel-spawn",
                "chain-6",
                200,
                1e9,
            ),
        ];
        assert!(check_baseline(&spawn_only, &baseline, 2.0).is_ok());
    }

    #[test]
    fn baseline_check_covers_cyclic_join() {
        let baseline = to_json(&[
            record("cyclic_join", "columnar-decomp", "ring-8", 200, 1000.0),
            record(
                "cyclic_join",
                "columnar-decomp-parallel",
                "ring-8",
                200,
                1000.0,
            ),
        ]);
        let ok = vec![
            record("cyclic_join", "columnar-decomp", "ring-8", 200, 1100.0),
            record(
                "cyclic_join",
                "columnar-decomp-parallel",
                "ring-8",
                200,
                900.0,
            ),
        ];
        assert!(check_baseline(&ok, &baseline, 2.0).is_ok());
        // A regressed cyclic pipeline trips the guard.
        let slow = vec![record(
            "cyclic_join",
            "columnar-decomp",
            "ring-8",
            200,
            5000.0,
        )];
        let err = check_baseline(&slow, &baseline, 2.0).unwrap_err();
        assert!(err.contains("cyclic_join"), "err: {err}");
        // A cyclic row missing from the baseline is flagged, not skipped.
        let unknown = vec![record(
            "cyclic_join",
            "columnar-decomp",
            "clique-5",
            200,
            10.0,
        )];
        assert!(check_baseline(&unknown, &baseline, 2.0).is_err());
        // The naive cyclic baseline rows are informational, not guarded.
        let naive_only = vec![
            record("cyclic_join", "columnar-decomp", "ring-8", 200, 1000.0),
            record("cyclic_join", "naive", "ring-8", 200, 1e9),
        ];
        assert!(check_baseline(&naive_only, &baseline, 2.0).is_ok());
    }

    #[test]
    fn baseline_check_covers_the_scale_rows() {
        let baseline = to_json(&[
            record(
                "data_load",
                "snapshot-load",
                "scale-chain-3",
                1_000_000,
                1e8,
            ),
            record("data_load", "text-parse", "scale-chain-3", 1_000_000, 4e9),
            record(
                "full_reduce",
                "columnar-morsel",
                "scale-chain-3",
                1_000_000,
                1e9,
            ),
        ]);
        let ok = vec![
            record(
                "data_load",
                "snapshot-load",
                "scale-chain-3",
                1_000_000,
                9e7,
            ),
            record("data_load", "text-parse", "scale-chain-3", 1_000_000, 4e9),
            record(
                "full_reduce",
                "columnar-morsel",
                "scale-chain-3",
                1_000_000,
                1.1e9,
            ),
        ];
        assert!(check_baseline(&ok, &baseline, 2.0).is_ok());
        // A snapshot decoder drifting toward text-parse speed trips the
        // guard like any other regression.
        let slow_load = vec![record(
            "data_load",
            "snapshot-load",
            "scale-chain-3",
            1_000_000,
            3e8,
        )];
        let err = check_baseline(&slow_load, &baseline, 2.0).unwrap_err();
        assert!(err.contains("snapshot-load"), "err: {err}");
        // So does the morsel-parallel engine.
        let slow_morsel = vec![record(
            "full_reduce",
            "columnar-morsel",
            "scale-chain-3",
            1_000_000,
            5e9,
        )];
        let err = check_baseline(&slow_morsel, &baseline, 2.0).unwrap_err();
        assert!(err.contains("columnar-morsel"), "err: {err}");
        // A scale row missing from the baseline is flagged, not skipped.
        let unknown = vec![record(
            "yannakakis_join",
            "columnar-morsel",
            "scale-chain-3",
            1_000_000,
            10.0,
        )];
        assert!(check_baseline(&unknown, &baseline, 2.0).is_err());
    }

    #[test]
    fn merge_json_replaces_colliding_rows_and_keeps_the_rest() {
        let existing = to_json(&[
            record("full_reduce", "columnar", "chain-6", 200, 1000.0),
            record("server_query_p50", "server", "fig1", 100, 9999.0),
        ]);
        let merged = merge_json(
            &existing,
            &[
                record("server_query_p50", "server", "fig1", 100, 500.0),
                record("server_query_p90", "server", "fig1", 100, 800.0),
            ],
        );
        let lines: Vec<&str> = merged.lines().filter(|l| l.contains("\"op\"")).collect();
        assert_eq!(lines.len(), 3, "merged: {merged}");
        // The untouched engine row survives verbatim; the colliding p50 row
        // is replaced, not duplicated.
        assert!(merged.contains("\"op\": \"full_reduce\""));
        let p50 = lines
            .iter()
            .find(|l| field_str(l, "op") == Some("server_query_p50"))
            .unwrap();
        assert_eq!(field_num(p50, "ns_per_iter"), Some(500.0));
        assert!(merged.contains("\"op\": \"server_query_p90\""));
        // The merged document still parses as a results document: every
        // record line but the last carries a trailing comma.
        assert!(
            merged.contains("}},\n") || merged.contains("},\n"),
            "merged: {merged}"
        );
        // Merging into nothing degenerates to a fresh document.
        let fresh = merge_json("", &[record("server_query_p50", "server", "fig1", 1, 1.0)]);
        assert_eq!(
            fresh.lines().filter(|l| l.contains("\"op\"")).count(),
            1,
            "fresh: {fresh}"
        );
    }

    #[test]
    fn baseline_check_covers_the_server_latency_rows() {
        let baseline = to_json(&[
            record("server_query_p50", "server", "fig1", 100, 1000.0),
            record("server_query_p90", "server", "fig1", 100, 2000.0),
            record("server_query_p99", "server", "fig1", 100, 4000.0),
        ]);
        let ok = vec![
            record("server_query_p50", "server", "fig1", 100, 1100.0),
            record("server_query_p90", "server", "fig1", 100, 1900.0),
            record("server_query_p99", "server", "fig1", 100, 4400.0),
        ];
        assert!(check_baseline(&ok, &baseline, 2.0).is_ok());
        // A regressed tail latency trips the guard like any engine row.
        let slow = vec![record("server_query_p99", "server", "fig1", 100, 9000.0)];
        let err = check_baseline(&slow, &baseline, 2.0).unwrap_err();
        assert!(err.contains("server_query_p99"), "err: {err}");
        // A server row missing from the baseline is flagged, not skipped.
        let unknown = vec![record("server_query_p50", "server", "other-db", 100, 10.0)];
        assert!(check_baseline(&unknown, &baseline, 2.0).is_err());
    }

    #[test]
    fn cyclic_records_cover_the_decomposition_pipeline() {
        let mut records = Vec::new();
        cyclic_records(Profile::Tiny, 2, &mut records);
        for workload in ["ring-8", "hyper-ring-5x3", "clique-5"] {
            assert!(
                records
                    .iter()
                    .any(|r| r.workload == workload && r.op == "decompose"),
                "missing decompose row for {workload}"
            );
            for engine in ["columnar-decomp", "columnar-decomp-parallel", "naive"] {
                assert!(
                    records.iter().any(|r| r.workload == workload
                        && r.op == "cyclic_join"
                        && r.engine == engine),
                    "missing cyclic_join/{engine} row for {workload}"
                );
            }
        }
    }

    #[test]
    fn quick_bench_produces_all_engines() {
        // Tiny smoke: run only the acyclicity half to keep the test fast.
        let mut records = Vec::new();
        acyclicity_records(Profile::Tiny, &mut records);
        assert!(records.iter().any(|r| r.op == "acyclicity_gyo"));
        assert!(records.iter().any(|r| r.op == "acyclicity_mcs"));
        assert!(records.iter().all(|r| r.ns_per_iter > 0.0));
    }
}
