//! `hyperq` — the CLI driver for the Maier & Ullman reproduction.
//!
//! Loads hypergraph schemas from edge-list files, classifies them under
//! Theorem 6.1 (acyclic with a join-tree certificate, cyclic with a
//! verified independent-path certificate), answers universal-relation
//! queries over canonical connections, and renders Graphviz DOT.
//!
//! ```text
//! hyperq classify  <schema>
//! hyperq query     <schema> <data> --select A,B[,..] [--engine connection|yannakakis|naive]
//! hyperq decompose <schema> [--heuristic min-fill|min-degree] [--dot]
//! hyperq dot       <schema> [--name G]
//! hyperq stats     <schema>
//! hyperq bench     [--out FILE] [--check BASELINE] [--threads N]
//! ```
//!
//! Module map: `load` parses the edge-list/tuple file formats into
//! `hypergraph`/`reldb` values; `commands` implements classify (the
//! Theorem 6.1 dichotomy with certificates), query (§7 universal-relation
//! answering, cyclic schemas routed through hypertree decomposition),
//! decompose (bag-tree stats/DOT for cyclic schemas), dot and stats;
//! `bench` is the machine-readable perf harness behind
//! `BENCH_results.json` and the CI regression guard.

#![forbid(unsafe_code)]

mod bench;
mod client;
mod commands;
mod load;

use commands::{CliError, Engine, MetricsMode};
use reldb::QueryGovernor;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
hyperq — acyclic-hypergraph schema tool (Maier & Ullman, PODS '82)

USAGE:
    hyperq classify  <schema>
    hyperq query     <schema> <data> --select A,B[,..] [--engine ENGINE]
                     [--metrics | --metrics-json]
                     [--timeout-ms N] [--mem-budget-mb N]
    hyperq decompose <schema> [--heuristic HEURISTIC] [--dot]
    hyperq dot       <schema> [--name NAME]
    hyperq stats     <schema>
    hyperq snapshot  save <schema> <data> <out> | load <snapshot>
    hyperq gen       <schema> <out> [--tuples N] [--domain N] [--skew F]
                     [--seed N] [--snapshot]
    hyperq bench     [--out FILE] [--check BASELINE] [--max-regression F]
                     [--threads N] [--quick | --tiny | --scale] [--calibrate]
    hyperq client    <addr> ping | list | shutdown [--now]
    hyperq client    <addr> stats [--prometheus] [--raw]
    hyperq client    <addr> query <db> --select A,B[,..] [--engine ENGINE]
                     [--strategy hash|sort-merge|auto] [--threads N]
                     [--timeout-ms N] [--mem-budget-mb N] [--metrics] [--raw]
    hyperq client    <addr> prepare <name> <db> --select A,B[,..] [flags]
    hyperq client    <addr> run <name> [override flags] [--raw]
    hyperq client    <addr> bench <db> --select A,B[,..] [--engine ENGINE]
                     [--clients N] [--requests N] [--out FILE]
                     [--check BASELINE] [--max-regression F]

COMMANDS:
    classify   Decide acyclic vs. cyclic and print the Theorem 6.1
               certificate (join tree / independent path)
    query      Answer the universal-relation query pi_X over the canonical
               connection CC(X); ENGINE is connection (default),
               yannakakis or naive.  The yannakakis engine handles cyclic
               schemas transparently via hypertree decomposition.
               --metrics appends the execution counter table (tuples
               probed/kept/built, kernel picks, level timings, pool
               leases); --metrics-json prints only the machine-readable
               metrics document, for piping into checkers.
               --timeout-ms bounds wall-clock time (measured from process
               start, so load time counts; 0 expires immediately) and
               --mem-budget-mb bounds estimated engine-held row memory;
               either flag runs the query governed, aborting cleanly at
               the next engine checkpoint with the database left intact
    decompose  Hypertree-decompose the schema: triangulate the primal graph
               (HEURISTIC is min-fill, the default, or min-degree), report
               bags, width, fill edges and verification, and with --dot
               render the bag tree as Graphviz DOT
    dot        Emit the schema as Graphviz DOT (bipartite incidence view)
    stats      Print a structural summary (degree hierarchy, articulation
               sets, incidence table)
    snapshot   save: load <schema>+<data> (text tuples or an existing
               snapshot) and write the versioned binary snapshot format to
               <out>; load: read a snapshot back and print its summary.
               Snapshots are also accepted directly as the <data> argument
               of query — recognized by their magic bytes — loading a
               10^6-tuple database in milliseconds instead of re-parsing
               text
    gen        Write a deterministic random dataset for <schema> to <out>:
               --tuples per relation (default 64), --domain value range
               (default: the tuple count, about one join match per key),
               --skew Zipf exponent (default 0 = uniform), --seed (default
               9).  Text tuple format by default; --snapshot writes the
               binary snapshot directly
    bench      Run the query/acyclicity benchmarks at fixed workload sizes
               (columnar engine vs naive reference); --out writes machine-
               readable JSON, --check fails on a columnar full_reduce
               regression beyond --max-regression (default 2.0) against a
               baseline JSON, --quick trims the workload sizes for CI,
               --scale runs only the 10^6-tuple rows (snapshot-load vs
               text-parse, morsel-parallel engine),
               --threads pins the parallel-engine worker count (default 4;
               0 = auto-detect the machine's parallelism) so CI runs are
               reproducible across runners.  --calibrate instead sweeps
               two-relation join/semijoin workloads across distinct-key
               ratios and reports the measured hash vs sort-merge
               crossover per operator (the measurement behind the Auto
               planner's shipped thresholds)
    client     Talk to a running hyperqd server at <addr> (HOST:PORT):
               ping, list the served databases and prepared queries,
               run ad-hoc or prepared queries with per-request policy and
               governance overrides, scrape the telemetry registry
               (stats; --prometheus switches the canonical JSON snapshot
               to the Prometheus text exposition), or ask the server to
               shut down (--now cancels in-flight queries instead of
               draining).  bench drives --clients concurrent threads each
               issuing --requests queries and reports the server-side
               p50/p90/p99 latency of exactly that window (two stats
               scrapes, histograms diffed); --out merges the rows into a
               BENCH_results.json document and --check guards them
               against a baseline.  --raw prints the server's response
               frame verbatim.  Server errors map to the exit codes below
               via the protocol's \"code\" field, so scripts assert on $?
               exactly as for the one-shot query command

FILES:
    <schema>   One edge per line: 'LABEL: A B C' (label optional)
    <data>     One tuple per line: 'LABEL: A=1 B=text ...', or a binary
               snapshot written by 'hyperq snapshot save'

EXIT CODES:
    0   success
    2   usage, parse, schema or I/O error
    3   deadline exceeded or query cancelled (--timeout-ms)
    4   memory budget exceeded (--mem-budget-mb)
    5   an engine worker panicked
";

fn fail(e: &CliError) -> ExitCode {
    eprintln!("hyperq: {}", e.message);
    ExitCode::from(e.code)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Extracts a boolean `--flag` from `args`, leaving only positionals behind.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Extracts `--flag value` from `args`, leaving only positionals behind.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn run(started: Instant) -> Result<String, CliError> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") || args.is_empty() {
        return Ok(USAGE.to_owned());
    }
    let command = args.remove(0);
    match command.as_str() {
        "classify" | "stats" | "dot" => {
            let name = take_flag(&mut args, "--name")?.unwrap_or_else(|| "H".to_owned());
            let [schema_path] = args.as_slice() else {
                return Err(format!("{command} expects exactly one <schema> file").into());
            };
            let schema = load::parse_schema(&read(schema_path)?)
                .map_err(|e| CliError::parse(schema_path, e))?;
            Ok(match command.as_str() {
                "classify" => commands::run_classify(&schema),
                "dot" => commands::run_dot(&schema, &name),
                _ => commands::run_stats(&schema),
            })
        }
        "decompose" => {
            let heuristic = match take_flag(&mut args, "--heuristic")? {
                Some(s) => decomp::Heuristic::parse(&s)?,
                None => decomp::Heuristic::MinFill,
            };
            let dot = take_switch(&mut args, "--dot");
            let [schema_path] = args.as_slice() else {
                return Err("decompose expects exactly one <schema> file".into());
            };
            let schema = load::parse_schema(&read(schema_path)?)
                .map_err(|e| CliError::parse(schema_path, e))?;
            commands::run_decompose(&schema, heuristic, dot).map_err(CliError::from)
        }
        "query" => {
            let select =
                take_flag(&mut args, "--select")?.ok_or("query requires --select A,B[,..]")?;
            let engine = match take_flag(&mut args, "--engine")? {
                Some(e) => Engine::parse(&e)?,
                None => Engine::Connection,
            };
            let metrics = match (
                take_switch(&mut args, "--metrics"),
                take_switch(&mut args, "--metrics-json"),
            ) {
                (true, true) => {
                    return Err("--metrics and --metrics-json are mutually exclusive".into())
                }
                (true, false) => MetricsMode::Table,
                (false, true) => MetricsMode::Json,
                (false, false) => MetricsMode::Off,
            };
            let timeout_ms = match take_flag(&mut args, "--timeout-ms")? {
                Some(s) => Some(s.parse::<u64>().map_err(|_| {
                    format!(
                        "--timeout-ms: expected milliseconds (0 = expire immediately), got {s:?}"
                    )
                })?),
                None => None,
            };
            let budget_mb = match take_flag(&mut args, "--mem-budget-mb")? {
                Some(s) => Some(
                    s.parse::<u64>()
                        .map_err(|_| format!("--mem-budget-mb: expected mebibytes, got {s:?}"))?,
                ),
                None => None,
            };
            let [schema_path, data_path] = args.as_slice() else {
                return Err("query expects <schema> and <data> files".into());
            };
            let schema = load::parse_schema(&read(schema_path)?)
                .map_err(|e| CliError::parse(schema_path, e))?;
            let db = load::load_data(&schema, data_path)?;
            let attrs: Vec<&str> = select
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if attrs.is_empty() {
                return Err("--select needs at least one attribute".into());
            }
            let governor = if timeout_ms.is_some() || budget_mb.is_some() {
                let mut g = QueryGovernor::new();
                if let Some(ms) = timeout_ms {
                    // Backdate the clock to process entry so schema/data
                    // load time counts against the deadline — the user
                    // bounded the *invocation*, not just the join.
                    g = g
                        .with_deadline(Duration::from_millis(ms))
                        .started_at(started);
                }
                if let Some(mb) = budget_mb {
                    g = g.with_memory_budget(mb.saturating_mul(1024 * 1024));
                }
                Some(g)
            } else {
                None
            };
            commands::run_query(&db, &attrs, engine, metrics, governor.as_ref())
        }
        "snapshot" => {
            if args.is_empty() {
                return Err("snapshot expects a subcommand: save or load".into());
            }
            let sub = args.remove(0);
            match sub.as_str() {
                "save" => {
                    let [schema_path, data_path, out_path] = args.as_slice() else {
                        return Err("snapshot save expects <schema> <data> <out> files".into());
                    };
                    let schema = load::parse_schema(&read(schema_path)?)
                        .map_err(|e| CliError::parse(schema_path, e))?;
                    // The data file may itself be a snapshot — save then
                    // doubles as a format re-write / verification pass.
                    let db = load::load_data(&schema, data_path)?;
                    commands::run_snapshot_save(&db, out_path)
                }
                "load" => {
                    let [path] = args.as_slice() else {
                        return Err("snapshot load expects exactly one <snapshot> file".into());
                    };
                    commands::run_snapshot_load(path)
                }
                other => Err(format!("unknown snapshot subcommand {other:?}").into()),
            }
        }
        "gen" => {
            let tuples = match take_flag(&mut args, "--tuples")? {
                Some(s) => s
                    .parse::<usize>()
                    .map_err(|_| format!("--tuples: expected a tuple count, got {s:?}"))?,
                None => 64,
            };
            let domain = match take_flag(&mut args, "--domain")? {
                Some(s) => s
                    .parse::<i64>()
                    .map_err(|_| format!("--domain: expected a value range, got {s:?}"))?,
                // One expected join match per key: joins on the generated
                // data stay O(n), the regime the scale scenarios want.
                None => (tuples as i64).max(2),
            };
            let skew = match take_flag(&mut args, "--skew")? {
                Some(s) => s
                    .parse::<f64>()
                    .map_err(|_| format!("--skew: expected a Zipf exponent, got {s:?}"))?,
                None => 0.0,
            };
            let seed = match take_flag(&mut args, "--seed")? {
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: expected an integer seed, got {s:?}"))?,
                None => 9,
            };
            let snapshot = take_switch(&mut args, "--snapshot");
            let [schema_path, out_path] = args.as_slice() else {
                return Err("gen expects <schema> and <out> paths".into());
            };
            let schema = load::parse_schema(&read(schema_path)?)
                .map_err(|e| CliError::parse(schema_path, e))?;
            commands::run_gen(&schema, tuples, domain, skew, seed, out_path, snapshot)
        }
        "bench" => {
            let out_path = take_flag(&mut args, "--out")?;
            let check_path = take_flag(&mut args, "--check")?;
            let max_regression = match take_flag(&mut args, "--max-regression")? {
                Some(s) => s
                    .parse::<f64>()
                    .map_err(|_| format!("--max-regression: not a number: {s:?}"))?,
                None => 2.0,
            };
            let threads = match take_flag(&mut args, "--threads")? {
                // `--threads 0` means "use whatever the machine has" —
                // the same auto-detect convention as ExecPolicy.threads.
                Some(s) => match s.parse::<usize>() {
                    Ok(0) => std::thread::available_parallelism().map_or(1, usize::from),
                    Ok(n) => n,
                    Err(_) => {
                        return Err(format!(
                            "--threads: expected a worker count (0 = auto-detect), got {s:?}"
                        )
                        .into())
                    }
                },
                None => 4,
            };
            let quick = take_switch(&mut args, "--quick");
            let tiny = take_switch(&mut args, "--tiny");
            let scale = take_switch(&mut args, "--scale");
            let calibrate = take_switch(&mut args, "--calibrate");
            if !args.is_empty() {
                return Err(format!("bench takes no positional arguments, got {args:?}").into());
            }
            let profile = match (tiny, quick, scale) {
                (true, false, false) => bench::Profile::Tiny,
                (false, true, false) => bench::Profile::Quick,
                (false, false, true) => bench::Profile::Scale,
                (false, false, false) => bench::Profile::Full,
                _ => return Err("--quick, --tiny and --scale are mutually exclusive".into()),
            };
            if calibrate {
                // The calibration sweep replaces the benchmark run: its
                // output is the measurement, not a record set to check.
                return Ok(bench::calibrate(profile));
            }
            let records = bench::run_all(profile, threads);
            let mut out = bench::summary(&records);
            if let Some(path) = out_path {
                std::fs::write(&path, bench::to_json(&records))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                out.push_str(&format!("wrote {path}\n"));
            }
            if let Some(path) = check_path {
                out.push_str(&bench::check_baseline(
                    &records,
                    &read(&path)?,
                    max_regression,
                )?);
            }
            Ok(out)
        }
        "client" => client::run_client(&mut args),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    }
}

fn main() -> ExitCode {
    let started = Instant::now();
    match run(started) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}
