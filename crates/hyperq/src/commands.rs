//! The `hyperq` subcommands: classify, query, decompose, dot, stats.

use acyclic::{
    classify, degree, is_acyclic_mcs, join_tree, join_tree_with_separators, Classification, Degree,
};
use decomp::{decompose, Heuristic};
use hypergraph::{Hypergraph, NodeSet};
use reldb::{
    is_globally_consistent, is_pairwise_consistent, plan_connection, query_via_connection_governed,
    query_via_connection_metered, query_via_full_join_governed, query_via_full_join_metered,
    query_yannakakis_governed, query_yannakakis_metered, CollectingSink, Database, EngineError,
    ExecPolicy, Governor, MetricsSink, NoopMetrics, QueryGovernor, Relation,
};

/// A CLI failure: the one-line diagnostic printed to stderr plus the
/// process exit code.  The codes are part of the documented interface
/// (scripts and CI branch on them):
///
/// | code | meaning |
/// |---|---|
/// | 0 | success |
/// | 2 | usage, parse, schema or I/O error |
/// | 3 | deadline exceeded or query cancelled |
/// | 4 | memory budget exceeded |
/// | 5 | an engine worker panicked |
#[derive(Debug)]
pub struct CliError {
    /// Process exit code (see the table above).
    pub code: u8,
    /// One-line diagnostic, printed as `hyperq: {message}`.
    pub message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self { code: 2, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::from(message.to_owned())
    }
}

impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        let code = match &e {
            EngineError::Cancelled | EngineError::DeadlineExceeded { .. } => 3,
            EngineError::BudgetExceeded { .. } => 4,
            EngineError::WorkerPanic(_) => 5,
            _ => 2,
        };
        Self {
            code,
            message: e.to_string(),
        }
    }
}

impl CliError {
    /// Wraps a file parse failure, routing it through
    /// [`EngineError::Parse`] so the line number survives into the
    /// diagnostic: `hyperq: <path>: line <n>: <message>`.
    pub fn parse(path: &str, e: crate::load::ParseError) -> Self {
        let engine = EngineError::Parse {
            line: e.line,
            message: e.message,
        };
        Self {
            code: 2,
            message: format!("{path}: {engine}"),
        }
    }
}

/// Which join engine `hyperq query` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Join only the objects in the canonical connection `CC(X)` (default).
    Connection,
    /// Yannakakis full reducer + join over the join tree (acyclic only).
    Yannakakis,
    /// Join every relation in the database, then project (baseline).
    Naive,
}

impl Engine {
    /// Parses an `--engine` argument value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "connection" => Ok(Engine::Connection),
            "yannakakis" => Ok(Engine::Yannakakis),
            "naive" => Ok(Engine::Naive),
            other => Err(format!(
                "unknown engine {other:?} (expected connection, yannakakis or naive)"
            )),
        }
    }
}

/// `hyperq classify`: prints the Theorem 6.1 dichotomy with its certificate.
pub fn run_classify(h: &Hypergraph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "hypergraph: {} nodes, {} edges, {}connected, {}reduced\n",
        h.node_count(),
        h.edge_count(),
        if h.is_connected() { "" } else { "not " },
        if h.is_reduced() { "" } else { "not " },
    ));
    match classify(h) {
        Classification::Acyclic { join_tree } => {
            out.push_str("classification: ACYCLIC\n");
            out.push_str(&format!("acyclicity degree: {:?}\n", degree_label(h)));
            out.push_str("certificate: join tree (running-intersection verified: ");
            match join_tree {
                Some(tree) => {
                    out.push_str(&format!("{})\n", tree.verify_running_intersection(h)));
                    // Re-derive separators for a readable tree listing.
                    if let Some((_, seps)) = join_tree_with_separators(h) {
                        for (child, parent) in tree.tree_edges() {
                            let sep = seps
                                .get(&child)
                                .map(|s| s.display(h.universe()).to_string())
                                .unwrap_or_default();
                            out.push_str(&format!(
                                "  {} -- {}   separator {}\n",
                                h.edges()[child.index()].label,
                                h.edges()[parent.index()].label,
                                sep,
                            ));
                        }
                    }
                    if tree.tree_edges().is_empty() {
                        out.push_str(&format!(
                            "  (single edge {})\n",
                            h.edges()[tree.root().index()].label
                        ));
                    }
                }
                None => out.push_str("trivially true, no edges)\n"),
            }
        }
        Classification::Cyclic { independent_path } => {
            out.push_str("classification: CYCLIC\n");
            out.push_str(&format!("acyclicity degree: {:?}\n", degree_label(h)));
            out.push_str(&format!(
                "certificate: independent path through {} node sets (verified: {})\n",
                independent_path.len(),
                independent_path.is_connecting_path(h) && independent_path.is_independent(h),
            ));
            out.push_str(&format!("  {}\n", independent_path.display(h)));
        }
    }
    // The MCS test must agree with GYO; surfacing both catches regressions.
    out.push_str(&format!(
        "cross-check: GYO and MCS agree = {}\n",
        is_acyclic_mcs(h) == classify(h).is_acyclic(),
    ));
    out
}

fn degree_label(h: &Hypergraph) -> Degree {
    degree(h)
}

/// How `hyperq query` reports execution metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// No metering: the engine runs its unmetered (no-op sink) path.
    #[default]
    Off,
    /// `--metrics`: append the human-readable counter table to the report.
    Table,
    /// `--metrics-json`: print *only* the metrics JSON document, so the
    /// output pipes cleanly into a checker.
    Json,
}

/// Runs one engine over `X`, governed when a [`QueryGovernor`] is present
/// (deadline / budget / cancellation checkpoints active), ungoverned —
/// checkpoints compiled away — otherwise.
fn execute<M: MetricsSink>(
    db: &Database,
    x: &NodeSet,
    engine: Engine,
    sink: &M,
    gov: Option<&QueryGovernor>,
) -> Result<Relation, EngineError> {
    let policy = ExecPolicy::default();
    match gov {
        Some(g) => match engine {
            Engine::Connection => query_via_connection_governed(db, x, &policy, sink, g),
            Engine::Naive => query_via_full_join_governed(db, x, &policy, sink, g),
            Engine::Yannakakis => query_yannakakis_governed(db, x, &policy, sink, g),
        },
        None => match engine {
            Engine::Connection => Ok(query_via_connection_metered(db, x, &policy, sink)),
            Engine::Naive => Ok(query_via_full_join_metered(db, x, &policy, sink)),
            Engine::Yannakakis => query_yannakakis_metered(db, x, &policy, sink),
        },
    }
}

/// `hyperq query`: answers `π_X(⋈ CC(X))` over a loaded database.
pub fn run_query(
    db: &Database,
    attrs: &[&str],
    engine: Engine,
    metrics: MetricsMode,
    gov: Option<&QueryGovernor>,
) -> Result<String, CliError> {
    let x: NodeSet = db
        .attributes(attrs.iter().copied())
        .map_err(|e| format!("bad --select: {e:?}"))?;
    let schema = db.schema();
    let plan = plan_connection(schema, &x);
    let mut out = String::new();
    out.push_str(&format!(
        "query attributes: {}\n",
        x.display(schema.universe())
    ));
    out.push_str(&format!(
        "canonical connection CC(X): {}\n",
        plan.connection.display()
    ));
    out.push_str(&format!(
        "objects joined: {}\n",
        plan.objects
            .iter()
            .map(|&i| schema.edges()[i].label.clone())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "database: {} tuples, pairwise consistent: {}, globally consistent: {}\n",
        db.tuple_count(),
        is_pairwise_consistent(db),
        is_globally_consistent(db),
    ));
    let sink = (metrics != MetricsMode::Off).then(CollectingSink::new);
    let answer: Relation = match &sink {
        None => execute(db, &x, engine, &NoopMetrics, gov),
        Some(s) => execute(db, &x, engine, s, gov),
    }?;
    if let Some(g) = gov {
        // A result produced after the deadline still counts as a timeout:
        // the caller asked for an answer *within* the budgeted time, so the
        // exit code must not depend on which checkpoint happened to notice.
        g.checkpoint()?;
    }
    if metrics == MetricsMode::Json {
        // JSON mode replaces the report entirely: stdout is the document.
        let Some(s) = sink else {
            return Err(CliError {
                code: 2,
                message: "internal: metrics sink missing in JSON mode".to_owned(),
            });
        };
        return Ok(s.snapshot().to_json());
    }
    out.push_str(&format!("engine: {engine:?}\n"));
    out.push_str(&format!("answer ({} tuples):\n", answer.len()));
    out.push_str(&answer.display(schema.universe()));
    if let Some(s) = sink {
        out.push_str("metrics:\n");
        out.push_str(&s.snapshot().render_table());
    }
    Ok(out)
}

/// `hyperq dot`: renders the schema as Graphviz DOT.
pub fn run_dot(h: &Hypergraph, name: &str) -> String {
    h.to_dot(name)
}

/// `hyperq decompose`: hypertree-decomposes a (typically cyclic) schema and
/// reports the bags, width, fill count and verification result — or, with
/// `dot`, renders the bag tree as Graphviz DOT.
pub fn run_decompose(h: &Hypergraph, heuristic: Heuristic, dot: bool) -> Result<String, String> {
    let d = decompose(h, heuristic).map_err(|e| e.to_string())?;
    if dot {
        return Ok(d.to_dot("decomposition", h));
    }
    let u = h.universe();
    let mut out = String::new();
    out.push_str(&format!(
        "hypergraph: {} nodes, {} edges, {}\n",
        h.node_count(),
        h.edge_count(),
        if join_tree(h).is_some() {
            "acyclic (a join tree exists; decomposition is optional)"
        } else {
            "cyclic (no join tree; queries run through this decomposition)"
        },
    ));
    out.push_str(&format!(
        "heuristic: {heuristic:?}, fill edges added: {}\n",
        d.fill_edges()
    ));
    out.push_str(&format!(
        "decomposition: {} bags, width {}\n",
        d.bag_count(),
        d.width()
    ));
    out.push_str(&format!(
        "verified (edge coverage + running intersection): {}\n",
        d.verify(h)
    ));
    for (b, bag) in d.bags().edges().iter().enumerate() {
        let assigned: Vec<&str> = d
            .assigned(b)
            .iter()
            .map(|&e| h.edges()[e.index()].label.as_str())
            .collect();
        let extra: Vec<&str> = d
            .extra_cover(b)
            .iter()
            .map(|&e| h.edges()[e.index()].label.as_str())
            .collect();
        out.push_str(&format!(
            "  {} {{{}}}  covers: {}{}\n",
            bag.label,
            bag.nodes.names(u).join(", "),
            if assigned.is_empty() {
                "-".to_owned()
            } else {
                assigned.join(", ")
            },
            if extra.is_empty() {
                String::new()
            } else {
                format!("  (projected: {})", extra.join(", "))
            },
        ));
    }
    for (c, p) in d.tree().tree_edges() {
        let sep = d.bags().edges()[c.index()]
            .nodes
            .intersection(&d.bags().edges()[p.index()].nodes);
        out.push_str(&format!(
            "  {} -- {}   separator {}\n",
            d.bags().edges()[c.index()].label,
            d.bags().edges()[p.index()].label,
            sep.display(u),
        ));
    }
    Ok(out)
}

/// `hyperq snapshot save`: writes an already-loaded database as a binary
/// snapshot.  The report echoes what was written so scripts can log it.
pub fn run_snapshot_save(db: &Database, out_path: &str) -> Result<String, CliError> {
    db.save_snapshot(out_path).map_err(CliError::from)?;
    let bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "snapshot: wrote {out_path} ({} relations, {} tuples, {bytes} bytes)\n",
        db.relations().len(),
        db.tuple_count(),
    ))
}

/// `hyperq snapshot load`: loads a binary snapshot and prints its summary —
/// the verification half of a save/load round trip, and a quick way to
/// inspect what a snapshot holds without a schema file.
pub fn run_snapshot_load(path: &str) -> Result<String, CliError> {
    let db = Database::load_snapshot(path).map_err(|e| CliError {
        code: 2,
        message: format!("{path}: {e}"),
    })?;
    let schema = db.schema();
    let mut out = String::new();
    out.push_str(&format!(
        "snapshot: {path} ({} nodes, {} relations, {} tuples)\n",
        schema.node_count(),
        schema.edge_count(),
        db.tuple_count(),
    ));
    for (e, r) in schema.edges().iter().zip(db.relations()) {
        out.push_str(&format!(
            "  {} ({})  {} tuples\n",
            e.label,
            e.nodes.names(schema.universe()).join(", "),
            r.len(),
        ));
    }
    Ok(out)
}

/// `hyperq gen`: writes a deterministic random dataset for `schema` —
/// `tuples` per relation, values drawn from `0..domain` with Zipf exponent
/// `skew` — as a text tuple file, or as a binary snapshot with `snapshot`
/// set.  The same seed and parameters always produce the same bytes, so
/// CI scale scenarios are reproducible.
pub fn run_gen(
    schema: &Hypergraph,
    tuples: usize,
    domain: i64,
    skew: f64,
    seed: u64,
    out_path: &str,
    snapshot: bool,
) -> Result<String, CliError> {
    let db = workload::random_database(
        schema,
        workload::DataParams {
            tuples_per_relation: tuples,
            domain,
            skew,
            key_cap: 0,
        },
        seed,
    );
    if snapshot {
        db.save_snapshot(out_path).map_err(CliError::from)?;
    } else {
        std::fs::write(out_path, crate::load::render_database(&db))
            .map_err(|e| CliError::from(format!("cannot write {out_path}: {e}")))?;
    }
    let bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "gen: wrote {out_path} ({} relations, {} tuples, {bytes} bytes, {})\n",
        db.relations().len(),
        db.tuple_count(),
        if snapshot { "snapshot" } else { "text" },
    ))
}

/// `hyperq stats`: structural summary of a schema.
pub fn run_stats(h: &Hypergraph) -> String {
    let u = h.universe();
    let mut out = String::new();
    out.push_str(&format!("nodes: {}\n", h.node_count()));
    out.push_str(&format!("edges: {}\n", h.edge_count()));
    out.push_str(&format!("connected: {}\n", h.is_connected()));
    out.push_str(&format!("reduced: {}\n", h.is_reduced()));
    out.push_str(&format!("components: {}\n", h.components().len()));
    out.push_str(&format!("acyclicity degree: {:?}\n", degree(h)));
    let arts = h.articulation_sets();
    out.push_str(&format!("articulation sets: {}\n", arts.len()));
    for a in arts.iter().take(8) {
        out.push_str(&format!("  {}\n", a.display(u)));
    }
    out.push_str("incidence:\n");
    out.push_str(&h.to_ascii_table());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{parse_database, parse_schema};

    fn fig1() -> Hypergraph {
        parse_schema("R1: A B C\nR2: C D E\nR3: A E F\nR4: A C E\n").unwrap()
    }

    #[test]
    fn classify_fig1_is_acyclic_with_join_tree() {
        let report = run_classify(&fig1());
        assert!(report.contains("classification: ACYCLIC"));
        assert!(report.contains("running-intersection verified: true"));
        assert!(report.contains("cross-check: GYO and MCS agree = true"));
    }

    #[test]
    fn classify_ring_is_cyclic_with_verified_path() {
        let ring = parse_schema("A B\nB C\nC D\nD A\n").unwrap();
        let report = run_classify(&ring);
        assert!(report.contains("classification: CYCLIC"));
        assert!(report.contains("verified: true"));
    }

    #[test]
    fn query_engines_agree_on_consistent_data() {
        let h = fig1();
        let db = parse_database(
            &h,
            "R1: A=1 B=2 C=3\nR2: C=3 D=4 E=5\nR3: A=1 E=5 F=6\nR4: A=1 C=3 E=5\n",
        )
        .unwrap();
        let a = run_query(&db, &["A", "D"], Engine::Connection, MetricsMode::Off, None).unwrap();
        let b = run_query(&db, &["A", "D"], Engine::Naive, MetricsMode::Off, None).unwrap();
        let c = run_query(&db, &["A", "D"], Engine::Yannakakis, MetricsMode::Off, None).unwrap();
        for report in [&a, &b, &c] {
            assert!(report.contains("answer (1 tuples):"), "report: {report}");
        }
        assert!(a.contains("objects joined: R1, R2") || a.contains("objects joined: R2, R4"));
    }

    #[test]
    fn query_rejects_unknown_attributes() {
        let h = fig1();
        let db = parse_database(&h, "").unwrap();
        assert!(run_query(&db, &["Z"], Engine::Connection, MetricsMode::Off, None).is_err());
    }

    #[test]
    fn decompose_reports_ring_bags_and_width() {
        let ring = parse_schema("E0: A B\nE1: B C\nE2: C D\nE3: D A\n").unwrap();
        let report = run_decompose(&ring, Heuristic::MinFill, false).unwrap();
        assert!(report.contains("cyclic (no join tree"), "report: {report}");
        assert!(report.contains("2 bags, width 2"), "report: {report}");
        assert!(report.contains("verified (edge coverage + running intersection): true"));
        assert!(report.contains("separator"));
        // The DOT flavor renders the bag tree.
        let dot = run_decompose(&ring, Heuristic::MinDegree, true).unwrap();
        assert!(dot.starts_with("graph decomposition {"));
        assert!(dot.contains("covers:"));
    }

    #[test]
    fn decompose_notes_acyclic_inputs() {
        let report = run_decompose(&fig1(), Heuristic::MinFill, false).unwrap();
        assert!(report.contains("acyclic (a join tree exists"));
        assert!(report.contains("width 2"));
    }

    #[test]
    fn query_yannakakis_answers_cyclic_schemas() {
        // A 4-ring instance whose cycle closes for x=1 only; the yannakakis
        // engine must route through the decomposition and agree with naive.
        let ring = parse_schema("E0: A B\nE1: B C\nE2: C D\nE3: D A\n").unwrap();
        let db = parse_database(
            &ring,
            "E0: A=1 B=1\nE1: B=1 C=1\nE2: C=1 D=1\nE3: D=1 A=1\n\
             E0: A=2 B=2\nE1: B=2 C=2\nE2: C=2 D=2\nE3: D=2 A=9\n",
        )
        .unwrap();
        let yann = run_query(&db, &["A", "C"], Engine::Yannakakis, MetricsMode::Off, None).unwrap();
        let naive = run_query(&db, &["A", "C"], Engine::Naive, MetricsMode::Off, None).unwrap();
        for report in [&yann, &naive] {
            assert!(report.contains("answer (1 tuples):"), "report: {report}");
        }
    }

    #[test]
    fn query_metrics_table_appends_counters() {
        let h = fig1();
        let db = parse_database(
            &h,
            "R1: A=1 B=2 C=3\nR2: C=3 D=4 E=5\nR3: A=1 E=5 F=6\nR4: A=1 C=3 E=5\n",
        )
        .unwrap();
        let report = run_query(
            &db,
            &["A", "D"],
            Engine::Yannakakis,
            MetricsMode::Table,
            None,
        )
        .unwrap();
        // The normal report survives, the counter table is appended.
        assert!(report.contains("answer (1 tuples):"), "report: {report}");
        assert!(report.contains("metrics:"), "report: {report}");
        assert!(report.contains("semijoin"), "report: {report}");
        assert!(report.contains("index rebuilds:"), "report: {report}");
    }

    #[test]
    fn query_metrics_json_is_the_whole_output() {
        let h = fig1();
        let db = parse_database(
            &h,
            "R1: A=1 B=2 C=3\nR2: C=3 D=4 E=5\nR3: A=1 E=5 F=6\nR4: A=1 C=3 E=5\n",
        )
        .unwrap();
        let json = run_query(
            &db,
            &["A", "D"],
            Engine::Yannakakis,
            MetricsMode::Json,
            None,
        )
        .unwrap();
        assert!(json.starts_with("{\n"), "json: {json}");
        assert!(
            !json.contains("answer ("),
            "json must replace the report: {json}"
        );
        for needle in [
            "\"join\":",
            "\"semijoin\":",
            "\"levels\":",
            "\"index_rebuilds\":",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in: {json}");
        }
        // An acyclic schema took no decomposition.
        assert!(json.contains("\"decomposition\": null"), "json: {json}");
    }

    #[test]
    fn cyclic_query_metrics_report_decomposition_widths() {
        let ring = parse_schema("E0: A B\nE1: B C\nE2: C D\nE3: D A\n").unwrap();
        let db = parse_database(
            &ring,
            "E0: A=1 B=1\nE1: B=1 C=1\nE2: C=1 D=1\nE3: D=1 A=1\n",
        )
        .unwrap();
        let json = run_query(
            &db,
            &["A", "C"],
            Engine::Yannakakis,
            MetricsMode::Json,
            None,
        )
        .unwrap();
        assert!(json.contains("\"min_fill_width\":"), "json: {json}");
        assert!(json.contains("\"bags\": [\n"), "bags recorded: {json}");
    }

    #[test]
    fn dot_and_stats_render() {
        let h = fig1();
        let dot = run_dot(&h, "fig1");
        assert!(dot.starts_with("graph fig1 {"));
        assert!(dot.contains("\"R1\""));
        let stats = run_stats(&h);
        assert!(stats.contains("nodes: 6"));
        assert!(stats.contains("edges: 4"));
        assert!(stats.contains("connected: true"));
    }

    #[test]
    fn governed_query_matches_ungoverned_and_times_out_with_code_3() {
        let h = fig1();
        let db = parse_database(
            &h,
            "R1: A=1 B=2 C=3\nR2: C=3 D=4 E=5\nR3: A=1 E=5 F=6\nR4: A=1 C=3 E=5\n",
        )
        .unwrap();
        // A roomy governor changes nothing about the report.
        let gov = reldb::QueryGovernor::new()
            .with_deadline(std::time::Duration::from_secs(3600))
            .with_memory_budget(1 << 30);
        let governed = run_query(
            &db,
            &["A", "D"],
            Engine::Yannakakis,
            MetricsMode::Off,
            Some(&gov),
        )
        .unwrap();
        let plain =
            run_query(&db, &["A", "D"], Engine::Yannakakis, MetricsMode::Off, None).unwrap();
        assert_eq!(governed, plain);
        // A zero deadline trips deterministically, mapped to exit code 3.
        let gov = reldb::QueryGovernor::new().with_deadline(std::time::Duration::ZERO);
        let err = run_query(
            &db,
            &["A", "D"],
            Engine::Yannakakis,
            MetricsMode::Off,
            Some(&gov),
        )
        .unwrap_err();
        assert_eq!(err.code, 3, "message: {}", err.message);
        assert!(err.message.contains("deadline exceeded"), "{}", err.message);
        // A one-byte budget trips the allocation guard, mapped to code 4.
        let gov = reldb::QueryGovernor::new().with_memory_budget(1);
        let err = run_query(
            &db,
            &["A", "D"],
            Engine::Yannakakis,
            MetricsMode::Off,
            Some(&gov),
        )
        .unwrap_err();
        assert_eq!(err.code, 4, "message: {}", err.message);
    }

    #[test]
    fn parse_errors_keep_their_line_numbers() {
        let e = parse_schema("R1: A B\nR1: C D\n").unwrap_err();
        let cli = CliError::parse("schema.hg", e);
        assert_eq!(cli.code, 2);
        assert!(
            cli.message.starts_with("schema.hg: line 2:"),
            "message: {}",
            cli.message
        );
    }

    #[test]
    fn engine_parsing() {
        assert_eq!(Engine::parse("connection").unwrap(), Engine::Connection);
        assert_eq!(Engine::parse("yannakakis").unwrap(), Engine::Yannakakis);
        assert_eq!(Engine::parse("naive").unwrap(), Engine::Naive);
        assert!(Engine::parse("turbo").is_err());
    }
}
