//! Parsers for the `hyperq` on-disk formats.
//!
//! The parsing core (schema edge-lists, `LABEL: A=1 B=x` tuple files,
//! snapshot schema matching) moved to [`hyperqd::load`] when the server
//! grew out of this CLI — both binaries read exactly the same formats.
//! This module re-exports it and keeps the CLI-flavored
//! [`load_data`] wrapper that maps failures onto exit codes.

pub use hyperqd::load::{parse_database, parse_schema, render_database, same_schema, ParseError};

use hypergraph::Hypergraph;
use reldb::Database;

/// Loads the data file at `path` for `schema`: binary snapshots
/// (recognized by their [`reldb::is_snapshot`] magic signature) load
/// directly through [`Database::load_snapshot`]'s machinery, anything else
/// parses as a text tuple file — so a snapshot is accepted anywhere a data
/// file is.  A snapshot embeds its own schema; it must agree with the
/// schema file the user passed (same labeled edges over the same attribute
/// names), otherwise the mismatch is reported rather than silently
/// answering against the wrong schema.
pub fn load_data(schema: &Hypergraph, path: &str) -> Result<Database, crate::commands::CliError> {
    let bytes = std::fs::read(path)
        .map_err(|e| crate::commands::CliError::from(format!("cannot read {path}: {e}")))?;
    if reldb::is_snapshot(&bytes) {
        let db = Database::from_snapshot_bytes(&bytes).map_err(|e| crate::commands::CliError {
            code: 2,
            message: format!("{path}: {e}"),
        })?;
        if !same_schema(db.schema(), schema) {
            return Err(crate::commands::CliError::from(format!(
                "{path}: snapshot schema does not match the given schema file"
            )));
        }
        return Ok(db);
    }
    let text = String::from_utf8(bytes).map_err(|e| {
        crate::commands::CliError::from(format!("{path}: not UTF-8 text (and not a snapshot): {e}"))
    })?;
    parse_database(schema, &text).map_err(|e| crate::commands::CliError::parse(path, e))
}
