//! End-to-end tests driving the compiled `hyperq` binary on the paper's
//! Fig. 1 hypergraph and the 4-ring — the acceptance scenario for the CLI.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    let p: PathBuf = [env!("CARGO_MANIFEST_DIR"), "fixtures", name]
        .iter()
        .collect();
    p.to_str().expect("utf-8 path").to_owned()
}

fn hyperq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hyperq"))
        .args(args)
        .output()
        .expect("spawn hyperq")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn classify_fig1_reports_acyclic_with_join_tree() {
    let out = hyperq(&["classify", &fixture("fig1.hg")]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = stdout(&out);
    assert!(text.contains("6 nodes, 4 edges"), "got: {text}");
    assert!(text.contains("classification: ACYCLIC"));
    assert!(text.contains("running-intersection verified: true"));
    assert!(text.contains("cross-check: GYO and MCS agree = true"));
}

#[test]
fn classify_ring_reports_cyclic_with_certificate() {
    let out = hyperq(&["classify", &fixture("ring4.hg")]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("classification: CYCLIC"));
    assert!(text.contains("independent path"));
    assert!(text.contains("verified: true"));
}

#[test]
fn query_fig1_all_engines_agree() {
    for engine in ["connection", "yannakakis", "naive"] {
        let out = hyperq(&[
            "query",
            &fixture("fig1.hg"),
            &fixture("fig1.data"),
            "--select",
            "B,D",
            "--engine",
            engine,
        ]);
        assert!(out.status.success(), "engine {engine}: {:?}", out.stderr);
        let text = stdout(&out);
        // B appears with 2 and 7, D with 4 and 9, all joinable: 4 tuples.
        assert!(
            text.contains("answer (4 tuples):"),
            "engine {engine}: {text}"
        );
    }
}

#[test]
fn query_connection_joins_only_the_canonical_connection() {
    let out = hyperq(&[
        "query",
        &fixture("fig1.hg"),
        &fixture("fig1.data"),
        "--select",
        "A,D",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    // CC({A, D}) for Fig. 1 is two partial edges (Example 5.2-style), so
    // the plan must not join all four objects.
    assert!(text.contains("objects joined:"));
    let joined = text
        .lines()
        .find(|l| l.starts_with("objects joined:"))
        .unwrap();
    assert!(
        joined.matches(", ").count() < 3,
        "joined too much: {joined}"
    );
    // A=1 joins with both D=4 and D=9 through C=3/E=5.
    assert!(text.contains("answer (2 tuples):"), "got: {text}");
}

#[test]
fn decompose_ring4_reports_bags_and_width() {
    let out = hyperq(&["decompose", &fixture("ring4.hg")]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = stdout(&out);
    assert!(text.contains("cyclic (no join tree"), "got: {text}");
    assert!(text.contains("2 bags, width 2"), "got: {text}");
    assert!(
        text.contains("verified (edge coverage + running intersection): true"),
        "got: {text}"
    );

    // The min-degree heuristic and the DOT rendering work too.
    let out = hyperq(&[
        "decompose",
        &fixture("ring4.hg"),
        "--heuristic",
        "min-degree",
        "--dot",
    ]);
    assert!(out.status.success());
    let dot = stdout(&out);
    assert!(dot.starts_with("graph decomposition {"));
    assert!(dot.contains("covers:"));

    // Unknown heuristics are rejected with a hint.
    let out = hyperq(&["decompose", &fixture("ring4.hg"), "--heuristic", "magic"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("min-fill"));
}

#[test]
fn query_yannakakis_executes_cyclic_ring_end_to_end() {
    // The 4-ring is cyclic, so the yannakakis engine must route through
    // decompose -> materialize -> reduce -> join; the closed cycles (values
    // 1 and 2) survive, the dangling A=3 chain does not.
    for (engine, select) in [
        ("yannakakis", "A,C"),
        ("naive", "A,C"),
        ("yannakakis", "A,B,C,D"),
        ("naive", "A,B,C,D"),
    ] {
        let out = hyperq(&[
            "query",
            &fixture("ring4.hg"),
            &fixture("ring4.data"),
            "--select",
            select,
            "--engine",
            engine,
        ]);
        assert!(out.status.success(), "engine {engine}: {:?}", out.stderr);
        let text = stdout(&out);
        assert!(
            text.contains("answer (2 tuples):"),
            "engine {engine}, select {select}: {text}"
        );
    }
}

#[test]
fn query_metrics_flags_drive_the_observability_surface() {
    // --metrics appends the counter table after the answer.
    let out = hyperq(&[
        "query",
        &fixture("fig1.hg"),
        &fixture("fig1.data"),
        "--select",
        "A,D",
        "--engine",
        "yannakakis",
        "--metrics",
    ]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = stdout(&out);
    assert!(text.contains("answer (2 tuples):"), "got: {text}");
    assert!(text.contains("metrics:"), "got: {text}");
    assert!(text.contains("index rebuilds:"), "got: {text}");

    // --metrics-json replaces the report with the machine document, on the
    // acyclic fixture (null decomposition) and the cyclic one (widths from
    // both heuristics, materialized bags).
    let out = hyperq(&[
        "query",
        &fixture("fig1.hg"),
        &fixture("fig1.data"),
        "--select",
        "A,D",
        "--engine",
        "yannakakis",
        "--metrics-json",
    ]);
    assert!(out.status.success());
    let json = stdout(&out);
    assert!(json.starts_with("{\n"), "got: {json}");
    assert!(
        !json.contains("answer ("),
        "json mode must not print the report"
    );
    assert!(json.contains("\"decomposition\": null"), "got: {json}");

    let out = hyperq(&[
        "query",
        &fixture("ring4.hg"),
        &fixture("ring4.data"),
        "--select",
        "A,C",
        "--engine",
        "yannakakis",
        "--metrics-json",
    ]);
    assert!(out.status.success());
    let json = stdout(&out);
    assert!(json.contains("\"min_fill_width\":"), "got: {json}");
    assert!(json.contains("\"min_degree_width\":"), "got: {json}");
    assert!(json.contains("\"bags\": [\n"), "got: {json}");

    // The two flags are mutually exclusive.
    let out = hyperq(&[
        "query",
        &fixture("fig1.hg"),
        &fixture("fig1.data"),
        "--select",
        "A,D",
        "--metrics",
        "--metrics-json",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn bench_calibrate_sweeps_both_operators() {
    let out = hyperq(&["bench", "--tiny", "--calibrate"]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = stdout(&out);
    assert!(text.contains("calibration sweep:"), "got: {text}");
    assert!(text.contains("measured crossover, join:"), "got: {text}");
    assert!(
        text.contains("measured crossover, semijoin:"),
        "got: {text}"
    );
}

#[test]
fn bench_json_rows_carry_tuple_counters() {
    let out_path = std::env::temp_dir().join(format!("hyperq_metrics_{}.json", std::process::id()));
    let out_path = out_path.to_str().expect("utf-8 path");
    let out = hyperq(&["bench", "--tiny", "--out", out_path]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let json = std::fs::read_to_string(out_path).expect("bench JSON written");
    // The guarded engine rows embed the per-row metrics counters.
    assert!(json.contains("\"probed\": "), "got: {json}");
    assert!(json.contains("\"kept\": "), "got: {json}");
    assert!(json.contains("\"join_ops\": "), "got: {json}");
    assert!(json.contains("\"semijoin_ops\": "), "got: {json}");
    // The calibrated-Auto engine rows ride along for the trajectory.
    assert!(
        json.contains("\"engine\": \"columnar-auto\""),
        "got: {json}"
    );
    assert!(
        json.contains("\"engine\": \"columnar-auto-guess\""),
        "got: {json}"
    );
    let _ = std::fs::remove_file(out_path);
}

#[test]
fn dot_output_is_wellformed_graphviz() {
    let out = hyperq(&["dot", &fixture("fig1.hg"), "--name", "fig1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("graph fig1 {"));
    assert!(text.trim_end().ends_with('}'));
    for label in ["R1", "R2", "R3", "R4"] {
        assert!(text.contains(label));
    }
}

#[test]
fn stats_reports_structure() {
    let out = hyperq(&["stats", &fixture("fig1.hg")]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("nodes: 6"));
    assert!(text.contains("edges: 4"));
    assert!(text.contains("incidence:"));
}

#[test]
fn bench_writes_json_and_guards_against_regressions() {
    let out_path = std::env::temp_dir().join(format!("hyperq_bench_{}.json", std::process::id()));
    let out_path = out_path.to_str().expect("utf-8 path");

    // Tiny profile: measure, print the summary, write the JSON document.
    let out = hyperq(&["bench", "--tiny", "--out", out_path]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = stdout(&out);
    assert!(text.contains("full_reduce"), "summary: {text}");
    assert!(text.contains("vs_columnar"), "summary: {text}");
    let json = std::fs::read_to_string(out_path).expect("bench JSON written");
    assert!(json.contains("\"engine\": \"columnar\""));
    assert!(json.contains("\"engine\": \"reference\""));
    assert!(json.contains("\"engine\": \"columnar-sortmerge\""));
    assert!(json.contains("\"engine\": \"columnar-parallel\""));
    assert!(json.contains("\"engine\": \"columnar-parallel-spawn\""));
    assert!(json.contains("\"workload\": \"snowflake-2x2\""));
    assert!(json.contains("\"workload\": \"chain-6-zipf\""));
    assert!(json.contains("\"workload\": \"chain-6-zipf-capped\""));
    assert!(json.contains("\"op\": \"join_pair\""));
    assert!(json.contains("\"op\": \"acyclicity_mcs\""));
    // The cyclic decomposition pipeline rows.
    assert!(json.contains("\"op\": \"decompose\""));
    assert!(json.contains("\"op\": \"cyclic_join\""));
    assert!(json.contains("\"engine\": \"columnar-decomp\""));
    assert!(json.contains("\"engine\": \"columnar-decomp-parallel\""));
    for workload in ["ring-8", "hyper-ring-5x3", "clique-5"] {
        assert!(
            json.contains(&format!("\"workload\": \"{workload}\"")),
            "missing {workload} rows"
        );
    }

    // Checking against the run we just wrote passes (ratios ~1x).
    let out = hyperq(&["bench", "--tiny", "--check", out_path]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    assert!(stdout(&out).contains("baseline check passed"));

    // An absurdly fast baseline trips the regression guard.
    std::fs::write(out_path, regression_baseline(&json)).unwrap();
    let out = hyperq(&["bench", "--tiny", "--check", out_path]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("regression"));

    let _ = std::fs::remove_file(out_path);
}

/// Rewrites every ns_per_iter in a bench JSON document to 1 ns.
fn regression_baseline(json: &str) -> String {
    json.lines()
        .map(|l| {
            if let Some(start) = l.find("\"ns_per_iter\": ") {
                let rest = &l[start + 15..];
                let end = rest.find(',').unwrap();
                format!("{}\"ns_per_iter\": 1{}\n", &l[..start], &rest[end..])
            } else {
                format!("{l}\n")
            }
        })
        .collect()
}

#[test]
fn bench_threads_zero_means_auto_detect() {
    // `--threads 0` used to be rejected as "not a positive integer"; it now
    // maps to the machine's available parallelism (the ExecPolicy
    // convention), so the bench still runs and produces the parallel rows.
    let out = hyperq(&["bench", "--tiny", "--threads", "0"]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = stdout(&out);
    assert!(text.contains("columnar-parallel"), "summary: {text}");

    // Garbage worker counts are still rejected, with a hint about 0.
    for bad in ["banana", "-1", "1.5"] {
        let out = hyperq(&["bench", "--tiny", "--threads", bad]);
        assert!(!out.status.success(), "--threads {bad} must fail");
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            err.contains("--threads") && err.contains("auto-detect"),
            "unclear error for --threads {bad}: {err}"
        );
    }
}

#[test]
fn query_timeout_exits_with_code_3_and_a_clean_message() {
    // --timeout-ms 0 expires before the first engine checkpoint, so the
    // outcome is deterministic: exit code 3, one diagnostic line, no answer.
    let out = hyperq(&[
        "query",
        &fixture("ring4.hg"),
        &fixture("ring4.data"),
        "--select",
        "A,C",
        "--engine",
        "yannakakis",
        "--timeout-ms",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {:?}", out.stderr);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.starts_with("hyperq: deadline exceeded"),
        "stderr: {err}"
    );
    assert_eq!(err.lines().count(), 1, "one-line diagnostic: {err}");
    assert!(stdout(&out).is_empty(), "no partial answer on timeout");
}

#[test]
fn query_budget_exhaustion_exits_with_code_4() {
    // A 0 MiB budget rejects the first engine allocation.
    let out = hyperq(&[
        "query",
        &fixture("ring4.hg"),
        &fixture("ring4.data"),
        "--select",
        "A,C",
        "--engine",
        "yannakakis",
        "--mem-budget-mb",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(4), "stderr: {:?}", out.stderr);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("memory budget exceeded"),
        "stderr: {:?}",
        out.stderr
    );
}

#[test]
fn generous_governor_limits_leave_the_answer_unchanged() {
    let governed = hyperq(&[
        "query",
        &fixture("ring4.hg"),
        &fixture("ring4.data"),
        "--select",
        "A,C",
        "--engine",
        "yannakakis",
        "--timeout-ms",
        "600000",
        "--mem-budget-mb",
        "1024",
    ]);
    assert!(governed.status.success(), "stderr: {:?}", governed.stderr);
    let plain = hyperq(&[
        "query",
        &fixture("ring4.hg"),
        &fixture("ring4.data"),
        "--select",
        "A,C",
        "--engine",
        "yannakakis",
    ]);
    assert_eq!(stdout(&governed), stdout(&plain));
    assert!(stdout(&governed).contains("answer (2 tuples):"));
}

#[test]
fn parse_errors_exit_2_with_file_and_line() {
    let bad = std::env::temp_dir().join(format!("hyperq_bad_{}.hg", std::process::id()));
    std::fs::write(&bad, "R1: A B\nR1: C D\n").unwrap();
    let out = hyperq(&["classify", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("line 2:") && err.contains("duplicate"),
        "stderr: {err}"
    );
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn snapshot_save_load_round_trips_and_feeds_query() {
    let snap = std::env::temp_dir().join(format!("hyperq_cli_{}.hqs", std::process::id()));
    let snap = snap.to_str().expect("utf-8 path");

    // save: text data in, binary snapshot out.
    let out = hyperq(&[
        "snapshot",
        "save",
        &fixture("fig1.hg"),
        &fixture("fig1.data"),
        snap,
    ]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    assert!(
        stdout(&out).contains("snapshot: wrote"),
        "got: {}",
        stdout(&out)
    );

    // load: summary of what the snapshot holds.
    let out = hyperq(&["snapshot", "load", snap]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = stdout(&out);
    assert!(text.contains("4 relations"), "got: {text}");

    // A snapshot is accepted anywhere a text data file is: the query
    // answer must be identical to the text-data run.
    let from_snap = hyperq(&["query", &fixture("fig1.hg"), snap, "--select", "B,D"]);
    assert!(from_snap.status.success(), "stderr: {:?}", from_snap.stderr);
    let from_text = hyperq(&[
        "query",
        &fixture("fig1.hg"),
        &fixture("fig1.data"),
        "--select",
        "B,D",
    ]);
    assert_eq!(stdout(&from_snap), stdout(&from_text));
    assert!(stdout(&from_snap).contains("answer (4 tuples):"));

    // Corrupt snapshots are structured parse errors (exit 2), not panics.
    let mut bytes = std::fs::read(snap).unwrap();
    let mid = bytes.len() / 2;
    bytes.truncate(mid);
    std::fs::write(snap, &bytes).unwrap();
    let out = hyperq(&["snapshot", "load", snap]);
    assert_eq!(out.status.code(), Some(2), "stderr: {:?}", out.stderr);
    // The diagnostic carries the byte offset in the standard line field.
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("line "), "stderr: {err}");

    let _ = std::fs::remove_file(snap);
}

#[test]
fn gen_writes_text_and_snapshot_datasets() {
    let dir = std::env::temp_dir();
    let text = dir.join(format!("hyperq_gen_{}.data", std::process::id()));
    let snap = dir.join(format!("hyperq_gen_{}.hqs", std::process::id()));
    let (text, snap) = (text.to_str().unwrap(), snap.to_str().unwrap());

    let out = hyperq(&[
        "gen",
        &fixture("chain3.hg"),
        text,
        "--tuples",
        "100",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    assert!(stdout(&out).contains("300 tuples"), "got: {}", stdout(&out));

    let out = hyperq(&[
        "gen",
        &fixture("chain3.hg"),
        snap,
        "--tuples",
        "100",
        "--seed",
        "7",
        "--snapshot",
    ]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    assert!(stdout(&out).contains("snapshot"), "got: {}", stdout(&out));

    // Same generator parameters, two encodings, one answer.
    let a = hyperq(&["query", &fixture("chain3.hg"), text, "--select", "A,D"]);
    let b = hyperq(&["query", &fixture("chain3.hg"), snap, "--select", "A,D"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(stdout(&a), stdout(&b));

    let _ = std::fs::remove_file(text);
    let _ = std::fs::remove_file(snap);
}

#[test]
fn bench_profile_flags_are_mutually_exclusive() {
    for args in [
        ["bench", "--quick", "--tiny"].as_slice(),
        &["bench", "--quick", "--scale"],
        &["bench", "--tiny", "--scale"],
    ] {
        let out = hyperq(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"),
            "{args:?}: {:?}",
            out.stderr
        );
    }
}

#[test]
fn bad_usage_fails_with_diagnostics() {
    let out = hyperq(&["classify", "/nonexistent/schema.hg"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = hyperq(&["frobnicate"]);
    assert!(!out.status.success());

    let out = hyperq(&["query", &fixture("fig1.hg")]);
    assert!(!out.status.success());

    let out = hyperq(&["--help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}
